package transport

import (
	"net"
	"sync"
	"testing"
	"time"

	"github.com/oblivfd/oblivfd/internal/store"
)

func startPoolServer(t testing.TB) string {
	t.Helper()
	backend := store.NewServer()
	if err := backend.CreateArray("a", 1024); err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = Serve(l, backend) }()
	t.Cleanup(func() { l.Close() })
	return l.Addr().String()
}

func TestPoolBasicOps(t *testing.T) {
	addr := startPoolServer(t)
	p, err := DialPool(addr, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if p.Size() != 4 {
		t.Errorf("Size = %d", p.Size())
	}
	if err := p.WriteCells("a", []int64{3}, [][]byte{{7}}); err != nil {
		t.Fatal(err)
	}
	got, err := p.ReadCells("a", []int64{3})
	if err != nil || len(got) != 1 || got[0][0] != 7 {
		t.Fatalf("ReadCells = %v, %v", got, err)
	}
	if err := p.CreateTree("t", 2, 2); err != nil {
		t.Fatal(err)
	}
	if err := p.WriteBuckets("t", 0, make([][]byte, 2)); err != nil {
		t.Fatal(err)
	}
	if _, err := p.ReadPath("t", 0); err != nil {
		t.Fatal(err)
	}
	if err := p.WritePath("t", 0, make([][]byte, 4)); err != nil {
		t.Fatal(err)
	}
	if n, err := p.ArrayLen("a"); err != nil || n != 1024 {
		t.Errorf("ArrayLen = %d, %v", n, err)
	}
	if err := p.Reveal("x", 1); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Stats(); err != nil {
		t.Fatal(err)
	}
	if err := p.Delete("t"); err != nil {
		t.Fatal(err)
	}
}

func TestDialPoolBadAddr(t *testing.T) {
	if _, err := DialPool("127.0.0.1:1", 2); err == nil {
		t.Error("dial to closed port succeeded")
	}
}

// TestPoolParallelThroughput checks that concurrent calls through a pool
// overlap server-side latency: with a 1 ms round trip modeled on the
// backend, eight pooled workers must finish well ahead of one. (Raw
// loopback shows no gain on single-core hosts — there is no latency to
// hide — so the test injects the latency the pool exists to overlap.)
func TestPoolParallelThroughput(t *testing.T) {
	if testing.Short() {
		t.Skip("throughput measurement in -short mode")
	}
	backend := store.NewServer()
	if err := backend.CreateArray("a", 1024); err != nil {
		t.Fatal(err)
	}
	slow := store.WithLatency(backend, time.Millisecond)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go func() { _ = Serve(l, slow) }()
	addr := l.Addr().String()
	const calls = 200

	seqPool, err := DialPool(addr, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer seqPool.Close()
	start := time.Now()
	for i := 0; i < calls; i++ {
		if _, err := seqPool.ReadCells("a", []int64{int64(i % 1024)}); err != nil {
			t.Fatal(err)
		}
	}
	sequential := time.Since(start)

	parPool, err := DialPool(addr, 8)
	if err != nil {
		t.Fatal(err)
	}
	defer parPool.Close()
	start = time.Now()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < calls; i += 8 {
				if _, err := parPool.ReadCells("a", []int64{int64(i % 1024)}); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	parallel := time.Since(start)

	t.Logf("sequential %v, parallel(8) %v, ratio %.2f", sequential, parallel, float64(sequential)/float64(parallel))
	if parallel >= sequential {
		t.Errorf("pooled parallel calls (%v) not faster than sequential (%v)", parallel, sequential)
	}
}
