package transport

import (
	"net"
	"testing"

	"github.com/oblivfd/oblivfd/internal/store"
)

// driveFaultyServer runs a fixed sequential call pattern against a server
// behind a drop-injecting listener and returns the per-call success
// pattern plus the drop count.
func driveFaultyServer(t *testing.T, seed int64, rate float64) ([]bool, int64) {
	t.Helper()
	backend := store.NewServer()
	if err := backend.CreateArray("a", 16); err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	fl := WithConnFaults(l, FaultConfig{Seed: seed, DropRate: rate})
	go func() { _ = Serve(fl, backend) }()
	t.Cleanup(func() { l.Close() })

	cfg := fastConfig()
	cfg.Redials = -1 // raw client: observe each drop as a failure
	c, err := DialWith(l.Addr().String(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	var pattern []bool
	for i := 0; i < 60; i++ {
		// Re-dial only after a break, so at most one connection is ever
		// live and the shared drop schedule stays sequential.
		if c.Broken() {
			c.Close()
			if c, err = DialWith(l.Addr().String(), cfg); err != nil {
				t.Fatal(err)
			}
		}
		err := c.WriteCells("a", []int64{int64(i % 16)}, [][]byte{{byte(i)}})
		pattern = append(pattern, err == nil)
	}
	c.Close()
	return pattern, fl.Drops()
}

// TestConnDropScheduleDeterministic: the same seed yields the same drop
// schedule; a different seed yields a different one.
func TestConnDropScheduleDeterministic(t *testing.T) {
	a, dropsA := driveFaultyServer(t, 99, 0.05)
	b, dropsB := driveFaultyServer(t, 99, 0.05)
	if dropsA == 0 {
		t.Fatal("no drops injected at 5% over 60 calls")
	}
	if dropsA != dropsB {
		t.Fatalf("drop counts differ under same seed: %d vs %d", dropsA, dropsB)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("drop schedules diverge at call %d", i)
		}
	}
}

// TestSelfHealingClientSurvivesDrops: with re-dialing enabled, the same
// drop-riddled server is fully usable — every call eventually lands.
func TestSelfHealingClientSurvivesDrops(t *testing.T) {
	backend := store.NewServer()
	if err := backend.CreateArray("a", 16); err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	fl := WithConnFaults(l, FaultConfig{Seed: 4, DropRate: 0.05})
	go func() { _ = Serve(fl, backend) }()
	t.Cleanup(func() { l.Close() })

	c, err := DialWith(l.Addr().String(), fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for i := 0; i < 200; i++ {
		if err := c.WriteCells("a", []int64{int64(i % 16)}, [][]byte{{byte(i)}}); err != nil {
			t.Fatalf("write %d through faulty transport: %v", i, err)
		}
		got, err := c.ReadCells("a", []int64{int64(i % 16)})
		if err != nil || got[0][0] != byte(i) {
			t.Fatalf("read %d = %v, %v", i, got, err)
		}
	}
	if fl.Drops() == 0 {
		t.Fatal("no drops injected at 5% over 400 calls")
	}
	if c.Reconnects() == 0 {
		t.Error("client survived drops without reconnecting")
	}
}
