package transport

import (
	"bytes"
	"errors"
	"net"
	"sync"
	"testing"

	"github.com/oblivfd/oblivfd/internal/store"
)

// startServer runs a transport server over a real TCP socket and returns a
// connected client.
func startServer(t *testing.T) (*Client, *store.Server) {
	t.Helper()
	backend := store.NewServer()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	go func() { _ = Serve(l, backend) }()
	t.Cleanup(func() { l.Close() })

	client, err := Dial(l.Addr().String())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	t.Cleanup(func() { client.Close() })
	return client, backend
}

func TestTCPArrayRoundTrip(t *testing.T) {
	c, _ := startServer(t)
	if err := c.CreateArray("a", 3); err != nil {
		t.Fatalf("CreateArray: %v", err)
	}
	n, err := c.ArrayLen("a")
	if err != nil || n != 3 {
		t.Fatalf("ArrayLen = %d, %v", n, err)
	}
	want := [][]byte{{1, 2, 3}, {4}}
	if err := c.WriteCells("a", []int64{0, 2}, want); err != nil {
		t.Fatalf("WriteCells: %v", err)
	}
	got, err := c.ReadCells("a", []int64{0, 2})
	if err != nil {
		t.Fatalf("ReadCells: %v", err)
	}
	for i := range want {
		if !bytes.Equal(got[i], want[i]) {
			t.Errorf("cell %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestTCPTreeRoundTrip(t *testing.T) {
	c, _ := startServer(t)
	if err := c.CreateTree("t", 3, 2); err != nil {
		t.Fatalf("CreateTree: %v", err)
	}
	slots := make([][]byte, 6)
	for i := range slots {
		slots[i] = []byte{byte(10 + i)}
	}
	if err := c.WritePath("t", 1, slots); err != nil {
		t.Fatalf("WritePath: %v", err)
	}
	got, err := c.ReadPath("t", 1)
	if err != nil {
		t.Fatalf("ReadPath: %v", err)
	}
	if len(got) != 6 {
		t.Fatalf("path slots = %d, want 6", len(got))
	}
	for i := range slots {
		if !bytes.Equal(got[i], slots[i]) {
			t.Errorf("slot %d = %v, want %v", i, got[i], slots[i])
		}
	}
}

func TestTCPErrorsPropagate(t *testing.T) {
	c, _ := startServer(t)
	if _, err := c.ReadCells("missing", []int64{0}); err == nil {
		t.Error("ReadCells on missing array returned nil error")
	}
	if err := c.CreateArray("a", 1); err != nil {
		t.Fatal(err)
	}
	if err := c.CreateArray("a", 1); err == nil {
		t.Error("duplicate CreateArray returned nil error over TCP")
	}
	// The connection must survive an application-level error.
	if n, err := c.ArrayLen("a"); err != nil || n != 1 {
		t.Errorf("ArrayLen after error = %d, %v", n, err)
	}
}

func TestTCPRevealAndStats(t *testing.T) {
	c, backend := startServer(t)
	if err := c.Reveal("fd:0->1", 1); err != nil {
		t.Fatalf("Reveal: %v", err)
	}
	got := backend.Reveals()
	if len(got) != 1 || got[0].Tag != "fd:0->1" || got[0].Value != 1 {
		t.Errorf("Reveals = %v", got)
	}
	if err := c.CreateArray("a", 1); err != nil {
		t.Fatal(err)
	}
	if err := c.WriteCells("a", []int64{0}, [][]byte{make([]byte, 7)}); err != nil {
		t.Fatal(err)
	}
	st, err := c.Stats()
	if err != nil {
		t.Fatalf("Stats: %v", err)
	}
	if st.Objects != 1 || st.StoredBytes != 7 {
		t.Errorf("Stats = %+v", st)
	}
}

func TestTCPDelete(t *testing.T) {
	c, _ := startServer(t)
	if err := c.CreateArray("a", 1); err != nil {
		t.Fatal(err)
	}
	if err := c.Delete("a"); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	if _, err := c.ArrayLen("a"); err == nil {
		t.Error("ArrayLen after delete succeeded")
	}
}

func TestClientClosed(t *testing.T) {
	c, _ := startServer(t)
	if err := c.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := c.Close(); err != nil {
		t.Errorf("second Close: %v", err)
	}
	if _, err := c.ArrayLen("a"); !errors.Is(err, ErrClosed) {
		t.Errorf("call after Close err = %v, want ErrClosed", err)
	}
}

func TestConcurrentClients(t *testing.T) {
	backend := store.NewServer()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go func() { _ = Serve(l, backend) }()

	if err := backend.CreateArray("shared", 64); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c, err := Dial(l.Addr().String())
			if err != nil {
				t.Errorf("dial: %v", err)
				return
			}
			defer c.Close()
			for i := w; i < 64; i += 4 {
				ct := []byte{byte(i)}
				if err := c.WriteCells("shared", []int64{int64(i)}, [][]byte{ct}); err != nil {
					t.Errorf("write %d: %v", i, err)
					return
				}
				got, err := c.ReadCells("shared", []int64{int64(i)})
				if err != nil || !bytes.Equal(got[0], ct) {
					t.Errorf("read %d = %v, %v", i, got, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
}

// TestInProcServiceParity checks that the raw store.Server and the TCP proxy
// behave identically for a scripted call sequence — protocol code must not
// care which one it holds.
func TestInProcServiceParity(t *testing.T) {
	tcpClient, _ := startServer(t)
	inproc := store.NewServer()

	exercise := func(svc store.Service) []string {
		var log []string
		record := func(tag string, err error) {
			if err != nil {
				log = append(log, tag+":err")
			} else {
				log = append(log, tag+":ok")
			}
		}
		record("create", svc.CreateArray("p", 2))
		record("dup", svc.CreateArray("p", 2))
		record("write", svc.WriteCells("p", []int64{0}, [][]byte{{1}}))
		_, err := svc.ReadCells("p", []int64{0, 1})
		record("read", err)
		_, err = svc.ReadCells("p", []int64{9})
		record("oob", err)
		record("tree", svc.CreateTree("q", 2, 2))
		_, err = svc.ReadPath("q", 1)
		record("path", err)
		record("del", svc.Delete("p"))
		record("del2", svc.Delete("p"))
		return log
	}

	a := exercise(inproc)
	b := exercise(tcpClient)
	if len(a) != len(b) {
		t.Fatalf("log lengths differ: %v vs %v", a, b)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("step %d: inproc %q vs tcp %q", i, a[i], b[i])
		}
	}
}
