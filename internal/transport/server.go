package transport

import (
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"github.com/oblivfd/oblivfd/internal/store"
	"github.com/oblivfd/oblivfd/internal/telemetry"
)

// Server accepts transport connections and dispatches requests to a
// store.Service. Unlike the bare Serve function it supports graceful
// shutdown: Shutdown stops accepting, lets in-flight requests finish within
// a grace period, and only then closes the connections — so a long
// oblivious run is never cut off mid-request by an operator signal.
type Server struct {
	svc store.Service

	mu       sync.Mutex
	listener net.Listener
	conns    map[net.Conn]struct{}
	draining bool

	inflight atomic.Int64 // requests decoded but not yet answered

	// Telemetry handles, all nil until SetMetrics; serveConn checks rpcLat
	// once per connection so the metrics-off path is a single nil test.
	rpcLat        *[numKinds]*telemetry.Histogram
	inflightGauge *telemetry.Gauge
	bytesIn       *telemetry.Counter
	bytesOut      *telemetry.Counter
	connsGauge    *telemetry.Gauge
}

// NewServer wraps a service for serving over TCP.
func NewServer(svc store.Service) *Server {
	return &Server{svc: svc, conns: make(map[net.Conn]struct{})}
}

// SetMetrics attaches a telemetry registry: per-RPC server-side latency
// (oblivfd_rpc_seconds{op=...}), the in-flight request gauge
// (oblivfd_rpc_inflight), open-connection gauge (oblivfd_conns_open), and
// wire byte counters (oblivfd_net_rx_bytes_total /
// oblivfd_net_tx_bytes_total). Call before Serve; a nil registry is a
// no-op. Everything observed is already server-visible, so nothing beyond
// L(DB) is recorded (DESIGN.md §9).
func (s *Server) SetMetrics(reg *telemetry.Registry) {
	if reg == nil {
		return
	}
	s.rpcLat = rpcHistograms(reg, "oblivfd_rpc_seconds")
	s.inflightGauge = reg.Gauge("oblivfd_rpc_inflight")
	s.connsGauge = reg.Gauge("oblivfd_conns_open")
	s.bytesIn = reg.Counter("oblivfd_net_rx_bytes_total")
	s.bytesOut = reg.Counter("oblivfd_net_tx_bytes_total")
}

// countingConn counts wire bytes as they cross the gob codecs.
type countingConn struct {
	net.Conn
	in, out *telemetry.Counter
}

func (c *countingConn) Read(p []byte) (int, error) {
	n, err := c.Conn.Read(p)
	c.in.Add(int64(n))
	return n, err
}

func (c *countingConn) Write(p []byte) (int, error) {
	n, err := c.Conn.Write(p)
	c.out.Add(int64(n))
	return n, err
}

// Serve accepts connections on l until the listener closes (returning nil)
// or fails. Each connection is served by its own goroutine; calls within
// one connection execute sequentially, matching the client proxy.
func (s *Server) Serve(l net.Listener) error {
	s.mu.Lock()
	s.listener = l
	s.mu.Unlock()
	var wg sync.WaitGroup
	defer wg.Wait()
	for {
		conn, err := l.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return fmt.Errorf("transport: accept: %w", err)
		}
		s.track(conn, true)
		wg.Add(1)
		go func() {
			defer wg.Done()
			s.serveConn(conn)
		}()
	}
}

func (s *Server) track(conn net.Conn, add bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if add {
		s.conns[conn] = struct{}{}
	} else {
		delete(s.conns, conn)
	}
}

// ActiveConns returns the number of currently open client connections.
func (s *Server) ActiveConns() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.conns)
}

func (s *Server) serveConn(conn net.Conn) {
	defer func() {
		s.track(conn, false)
		conn.Close()
		s.connsGauge.Add(-1)
	}()
	s.connsGauge.Add(1)
	var rw io.ReadWriter = conn
	if s.rpcLat != nil {
		rw = &countingConn{Conn: conn, in: s.bytesIn, out: s.bytesOut}
	}
	dec := gob.NewDecoder(rw)
	enc := gob.NewEncoder(rw)
	for {
		var req request
		if err := dec.Decode(&req); err != nil {
			return // io.EOF on clean shutdown; anything else also ends the conn
		}
		s.inflight.Add(1)
		s.inflightGauge.Add(1)
		var t0 time.Time
		if s.rpcLat != nil {
			t0 = time.Now()
		}
		resp := dispatch(s.svc, &req)
		if s.rpcLat != nil && req.Kind < numKinds {
			s.rpcLat[req.Kind].ObserveSince(t0)
		}
		err := enc.Encode(resp)
		s.inflight.Add(-1)
		s.inflightGauge.Add(-1)
		if err != nil {
			return
		}
		s.mu.Lock()
		draining := s.draining
		s.mu.Unlock()
		if draining {
			return // answered the in-flight request; take no more
		}
	}
}

// Shutdown stops accepting new connections and drains: requests already
// being served get up to grace to finish (each connection closes right
// after its current response), then any remaining connections are closed.
// It returns the number of connections that were still active when the
// drain began.
func (s *Server) Shutdown(grace time.Duration) int {
	s.mu.Lock()
	s.draining = true
	l := s.listener
	active := len(s.conns)
	s.mu.Unlock()
	if l != nil {
		_ = l.Close()
	}
	deadline := time.Now().Add(grace)
	for s.inflight.Load() > 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	s.mu.Lock()
	for conn := range s.conns {
		_ = conn.Close()
	}
	s.mu.Unlock()
	return active
}

// Serve accepts connections on l and dispatches requests to svc until the
// listener is closed. It is the fire-and-forget form of Server.Serve; use a
// Server directly when graceful shutdown is needed.
func Serve(l net.Listener, svc store.Service) error {
	return NewServer(svc).Serve(l)
}
