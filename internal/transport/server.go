package transport

import (
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"github.com/oblivfd/oblivfd/internal/otrace"
	"github.com/oblivfd/oblivfd/internal/store"
	"github.com/oblivfd/oblivfd/internal/telemetry"
)

// Server accepts transport connections and dispatches requests to a
// store.Service. Unlike the bare Serve function it supports graceful
// shutdown: Shutdown stops accepting, lets in-flight requests finish within
// a grace period, and only then closes the connections — so a long
// oblivious run is never cut off mid-request by an operator signal.
//
// A Server is multi-tenant: a connection that opens with a session
// handshake (see ClientConfig.Database) is authenticated and admitted by
// the session registry, and every request it sends afterwards is scoped to
// its database namespace and gated by admission control — budget overruns
// are shed with a retryable store.ErrOverloaded rather than queued.
// Connections that never handshake keep the original single-tenant
// behaviour (root namespace, no admission) unless the limits require a
// token, in which case their requests are refused with
// store.ErrUnauthorized.
type Server struct {
	svc store.Service

	mu       sync.Mutex
	listener net.Listener
	conns    map[net.Conn]struct{}
	draining bool

	limits     store.SessionLimits
	registry   *store.SessionRegistry
	replicator store.Replicator // nil on unreplicated servers

	inflight atomic.Int64 // requests decoded but not yet answered

	tracer *otrace.Tracer // nil until SetTracer; server-side span recording

	// Telemetry handles, all nil until SetMetrics; serveConn checks rpcLat
	// once per connection so the metrics-off path is a single nil test.
	telReg        *telemetry.Registry
	rpcLat        *[numKinds]*telemetry.Histogram
	inflightGauge *telemetry.Gauge
	bytesIn       *telemetry.Counter
	bytesOut      *telemetry.Counter
	connsGauge    *telemetry.Gauge
}

// NewServer wraps a service for serving over TCP. The zero session limits
// impose no admission control; see SetSessionLimits.
func NewServer(svc store.Service) *Server {
	return &Server{
		svc:      svc,
		conns:    make(map[net.Conn]struct{}),
		registry: store.NewSessionRegistry(store.SessionLimits{}, nil),
	}
}

// SetSessionLimits installs admission-control limits, rebuilding the
// session registry. Call before Serve (live sessions do not carry over).
func (s *Server) SetSessionLimits(limits store.SessionLimits) {
	s.limits = limits
	s.registry = store.NewSessionRegistry(limits, s.telReg)
}

// Sessions exposes the session registry (active counts, shed counters) for
// tests and operator endpoints.
func (s *Server) Sessions() *store.SessionRegistry { return s.registry }

// SetReplicator installs the replication role manager: replication RPCs
// (kindReplicate/kindSync/kindPromote) are routed to it, and session
// handshakes become fence-aware (see handleHello). Call before Serve.
func (s *Server) SetReplicator(rep store.Replicator) { s.replicator = rep }

// Replicator returns the installed role manager (nil when unreplicated).
func (s *Server) Replicator() store.Replicator { return s.replicator }

// Draining reports whether a shutdown drain has begun (operator endpoints).
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// SetMetrics attaches a telemetry registry: per-RPC server-side latency
// (oblivfd_rpc_seconds{op=...}), the in-flight request gauge
// (oblivfd_rpc_inflight), open-connection gauge (oblivfd_conns_open), and
// wire byte counters (oblivfd_net_rx_bytes_total /
// oblivfd_net_tx_bytes_total). Call before Serve; a nil registry is a
// no-op. Everything observed is already server-visible, so nothing beyond
// L(DB) is recorded (DESIGN.md §9).
func (s *Server) SetMetrics(reg *telemetry.Registry) {
	if reg == nil {
		return
	}
	s.telReg = reg
	s.rpcLat = rpcHistograms(reg, "oblivfd_rpc_seconds")
	s.inflightGauge = reg.Gauge("oblivfd_rpc_inflight")
	s.connsGauge = reg.Gauge("oblivfd_conns_open")
	s.bytesIn = reg.Counter("oblivfd_net_rx_bytes_total")
	s.bytesOut = reg.Counter("oblivfd_net_tx_bytes_total")
	s.registry = store.NewSessionRegistry(s.limits, reg)
}

// SetTracer attaches a span recorder: every dispatched request runs under
// a server-side span (server/<op>) linked to the client's span via the
// frame's constant-size context header, and bound to the handling
// goroutine so store/WAL/replication spans nest under it. Call before
// Serve; nil disables recording (frames still carry the header).
func (s *Server) SetTracer(tr *otrace.Tracer) { s.tracer = tr }

// Tracer returns the installed span recorder (nil when tracing is off).
func (s *Server) Tracer() *otrace.Tracer { return s.tracer }

// countingConn counts wire bytes as they cross the gob codecs.
type countingConn struct {
	net.Conn
	in, out *telemetry.Counter
}

func (c *countingConn) Read(p []byte) (int, error) {
	n, err := c.Conn.Read(p)
	c.in.Add(int64(n))
	return n, err
}

func (c *countingConn) Write(p []byte) (int, error) {
	n, err := c.Conn.Write(p)
	c.out.Add(int64(n))
	return n, err
}

// Serve accepts connections on l until the listener closes (returning nil)
// or fails. Each connection is served by its own goroutine; calls within
// one connection execute sequentially, matching the client proxy.
func (s *Server) Serve(l net.Listener) error {
	s.mu.Lock()
	s.listener = l
	s.mu.Unlock()
	var wg sync.WaitGroup
	defer wg.Wait()
	if idle := s.registry.Limits().IdleTimeout; idle > 0 {
		// Reclaim idle sessions even when the server is not at capacity, so
		// an abandoned tenant's connection does not pin a session slot.
		stop := make(chan struct{})
		defer close(stop)
		wg.Add(1)
		go func() {
			defer wg.Done()
			tick := time.NewTicker(idle / 2)
			defer tick.Stop()
			for {
				select {
				case <-stop:
					return
				case <-tick.C:
					s.registry.SweepIdle()
				}
			}
		}()
	}
	for {
		conn, err := l.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return fmt.Errorf("transport: accept: %w", err)
		}
		s.track(conn, true)
		wg.Add(1)
		go func() {
			defer wg.Done()
			s.serveConn(conn)
		}()
	}
}

func (s *Server) track(conn net.Conn, add bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if add {
		s.conns[conn] = struct{}{}
	} else {
		delete(s.conns, conn)
	}
}

// ActiveConns returns the number of currently open client connections.
func (s *Server) ActiveConns() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.conns)
}

// connState is one connection's session binding: nil until a handshake
// succeeds, after which svc is the namespaced view every request dispatches
// through.
type connState struct {
	sess      *store.Session
	svc       store.Service
	tenantLat *telemetry.Histogram
}

// handleHello authenticates and admits a session handshake, binding the
// connection to its database namespace. A repeated handshake on the same
// connection replaces the previous session (the client only re-handshakes
// on a fresh connection, but a replaced session must not leak a slot).
func (s *Server) handleHello(conn net.Conn, cs *connState, req *request) *response {
	var resp response
	if cs.sess != nil {
		cs.sess.Close()
		cs.sess, cs.svc, cs.tenantLat = nil, nil, nil
	}
	// Fence-aware handshake: a client that knows the cluster's fencing
	// epoch announces it (req.Value). The comparison resolves both
	// directions of staleness before any data flows — a deposed primary
	// learns of its successor and fences itself; a client with an outdated
	// fence is sent back to probe. The fence claim is state-changing
	// (ObserveFence durably deposes a stale primary), so it is token-gated
	// exactly like the replication RPCs: an unauthenticated Hello must not
	// be able to fence a token-protected server off.
	if s.replicator != nil && req.Value > 0 {
		if token := s.registry.Limits().Token; token != "" && req.Token != token {
			resp.Err, resp.Code = encodeErr(fmt.Errorf(
				"%w: fence-bearing handshake requires the session token", store.ErrUnauthorized))
			return &resp
		}
		fence := s.replicator.Fence()
		switch {
		case req.Value > fence:
			_ = s.replicator.ObserveFence(req.Value)
			resp.Err, resp.Code = encodeErr(fmt.Errorf(
				"%w: client fence %d above local %d", store.ErrFenced, req.Value, fence))
			resp.Fence = s.replicator.Fence()
			return &resp
		case req.Value < fence:
			resp.Err, resp.Code = encodeErr(fmt.Errorf(
				"%w: client fence %d below local %d", store.ErrFenced, req.Value, fence))
			resp.Fence = fence
			return &resp
		case !s.replicator.IsPrimary():
			resp.Err, resp.Code = encodeErr(store.ErrNotPrimary)
			resp.Fence = fence
			return &resp
		}
	}
	sess, err := s.registry.Open(req.Name, req.Token)
	if err != nil {
		resp.Err, resp.Code = encodeErr(err)
		return &resp
	}
	// Eviction (idle sweep) closes the connection; the self-healing client
	// answers by re-dialing and re-handshaking, so an evicted tenant that
	// returns gets a fresh session transparently.
	sess.OnEvict(func() { conn.Close() })
	cs.sess = sess
	cs.svc = store.Namespaced(s.svc, sess.DB)
	if s.telReg != nil {
		db := sess.DB
		if db == "" {
			db = "root"
		}
		cs.tenantLat = s.telReg.Histogram("oblivfd_tenant_rpc_seconds", "db", db)
	}
	return &resp
}

func (s *Server) serveConn(conn net.Conn) {
	var cs connState
	defer func() {
		if cs.sess != nil {
			cs.sess.Close()
		}
		s.track(conn, false)
		conn.Close()
		s.connsGauge.Add(-1)
	}()
	s.connsGauge.Add(1)
	var rw io.ReadWriter = conn
	if s.rpcLat != nil {
		rw = &countingConn{Conn: conn, in: s.bytesIn, out: s.bytesOut}
	}
	dec := gob.NewDecoder(rw)
	enc := gob.NewEncoder(rw)
	needToken := s.registry.Limits().Token != ""
	// One goroutine-local binding for the whole connection: each request
	// points it at its span with a single atomic store, so store/WAL/
	// replication spans started while handling the request nest under it.
	var bind *otrace.Binding
	if s.tracer != nil {
		bind = otrace.NewBinding()
		defer bind.Release()
	}
	for {
		var req request
		if err := dec.Decode(&req); err != nil {
			return // io.EOF on clean shutdown; anything else also ends the conn
		}
		s.inflight.Add(1)
		s.inflightGauge.Add(1)
		var t0 time.Time
		if s.rpcLat != nil || cs.tenantLat != nil {
			t0 = time.Now()
		}
		// The server-side span links to the client's RPC span through the
		// frame's constant-size context header. An invalid header (untraced
		// client) starts a fresh server-local root instead.
		var span *otrace.Span
		if s.tracer != nil && req.Kind < numKinds {
			span = s.tracer.StartChild(serverSpanNames[req.Kind], otrace.FromWire(req.Ctx))
			bind.Set(span)
		}
		var resp *response
		switch {
		case req.Kind == kindHello:
			resp = s.handleHello(conn, &cs, &req)
		case req.Kind == kindReplicate || req.Kind == kindSync || req.Kind == kindPromote || req.Kind == kindRepair:
			// Replication RPCs bypass sessions and namespacing: they carry
			// whole WAL records (already namespaced at the primary) and role
			// changes, authenticated by the shared session token.
			resp = s.handleReplication(&req)
		case req.Kind == kindTraceDump:
			resp = s.handleTraceDump(&req)
		case cs.sess != nil:
			// Admission: budget overruns and rate-limit hits are shed with
			// a retryable error before the backend sees the request.
			if release, err := cs.sess.Begin(); err != nil {
				resp = &response{}
				resp.Err, resp.Code = encodeErr(err)
			} else {
				resp = dispatch(cs.svc, &req)
				release()
			}
		case needToken:
			resp = &response{}
			resp.Err, resp.Code = encodeErr(fmt.Errorf(
				"%w: server requires a session handshake with a token", store.ErrUnauthorized))
		default:
			// Sessionless connection on an open server: the original
			// single-tenant path, byte-for-byte.
			resp = dispatch(s.svc, &req)
		}
		bind.Set(nil)
		span.End()
		if s.rpcLat != nil && req.Kind < numKinds {
			s.rpcLat[req.Kind].ObserveSince(t0)
		}
		if cs.tenantLat != nil && req.Kind != kindHello {
			cs.tenantLat.ObserveSince(t0)
		}
		err := enc.Encode(resp)
		s.inflight.Add(-1)
		s.inflightGauge.Add(-1)
		if err != nil {
			return
		}
		s.mu.Lock()
		draining := s.draining
		s.mu.Unlock()
		if draining && cs.sess == nil {
			return // answered the in-flight request; take no more
		}
		// A session connection keeps serving through a drain: fair shutdown
		// lets admitted tenants finish while the registry refuses newcomers;
		// Shutdown force-closes whatever outlives the grace period.
	}
}

// handleReplication serves the replication RPCs against the installed
// Replicator. The shared session token (when configured) gates them exactly
// as it gates handshakes — replication messages can rewrite the whole store.
func (s *Server) handleReplication(req *request) *response {
	var resp response
	fail := func(err error) *response {
		resp.Err, resp.Code = encodeErr(err)
		if s.replicator != nil {
			resp.Fence = s.replicator.Fence()
			resp.Seq = s.replicator.Watermark()
		}
		return &resp
	}
	if s.replicator == nil {
		return fail(fmt.Errorf("%w: server is not replicated", store.ErrNotPrimary))
	}
	if token := s.registry.Limits().Token; token != "" && req.Token != token {
		return fail(fmt.Errorf("%w: bad replication token", store.ErrUnauthorized))
	}
	switch req.Kind {
	case kindReplicate:
		wm, err := s.replicator.ApplyReplicated(req.Value, req.Seq, req.Cts)
		resp.Seq = wm
		return fail(err)
	case kindSync:
		if len(req.Cts) != 1 {
			return fail(fmt.Errorf("%w: sync carries %d snapshots, want 1", store.ErrIntegrity, len(req.Cts)))
		}
		return fail(s.replicator.ApplySync(req.Value, req.Seq, req.Cts[0]))
	case kindRepair:
		cts, err := s.replicator.FetchRepair(req.Value, req.Name, req.N == 1, req.Idx)
		resp.Cts = cts
		return fail(err)
	default: // kindPromote
		fence, err := s.replicator.Promote(req.Value)
		resp.Fence = fence
		return fail(err)
	}
}

// handleTraceDump serves the operator span-dump RPC: the server's current
// span ring as a JSON array in Cts[0], optionally filtered to one trace ID
// (req.Name, lowercase hex). It is token-gated like replication control —
// span records reveal operation timings an unauthenticated peer has no
// business reading on a token-protected server. A server without a tracer
// answers with an empty record set.
func (s *Server) handleTraceDump(req *request) *response {
	var resp response
	if token := s.registry.Limits().Token; token != "" && req.Token != token {
		resp.Err, resp.Code = encodeErr(fmt.Errorf("%w: bad trace-dump token", store.ErrUnauthorized))
		return &resp
	}
	recs := s.tracer.Records()
	if req.Name != "" {
		kept := recs[:0]
		for _, r := range recs {
			if r.Trace == req.Name {
				kept = append(kept, r)
			}
		}
		recs = kept
	}
	b, err := otrace.MarshalRecords(recs)
	if err != nil {
		resp.Err, resp.Code = encodeErr(err)
		return &resp
	}
	resp.Cts = [][]byte{b}
	return &resp
}

// Shutdown stops accepting new connections and drains fairly: the session
// registry refuses new handshakes (retryable ErrOverloaded, so refused
// clients back off and find a replacement server), sessionless connections
// close right after their current response, and session connections keep
// serving so admitted tenants can finish their runs — up to grace, after
// which any remaining connections are force-closed. It returns the number
// of connections that were still active when the drain began.
func (s *Server) Shutdown(grace time.Duration) int {
	s.mu.Lock()
	s.draining = true
	l := s.listener
	active := len(s.conns)
	s.mu.Unlock()
	s.registry.Drain()
	if l != nil {
		_ = l.Close()
	}
	deadline := time.Now().Add(grace)
	for (s.inflight.Load() > 0 || s.registry.Active() > 0) && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	s.mu.Lock()
	for conn := range s.conns {
		_ = conn.Close()
	}
	s.mu.Unlock()
	return active
}

// Serve accepts connections on l and dispatches requests to svc until the
// listener is closed. It is the fire-and-forget form of Server.Serve; use a
// Server directly when graceful shutdown is needed.
func Serve(l net.Listener, svc store.Service) error {
	return NewServer(svc).Serve(l)
}
