package transport

import (
	"errors"
	"net"
	"sync"
	"testing"
	"time"

	"github.com/oblivfd/oblivfd/internal/store"
)

// startSessionServer runs a multi-tenant transport server with the given
// admission limits and returns it with its backend and address.
func startSessionServer(t *testing.T, limits store.SessionLimits) (*Server, *store.Server, string) {
	t.Helper()
	backend := store.NewServer()
	srv := NewServer(backend)
	srv.SetSessionLimits(limits)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	go func() { _ = srv.Serve(l) }()
	t.Cleanup(func() { l.Close() })
	return srv, backend, l.Addr().String()
}

// sessionClientConfig returns fast-redial client settings bound to a tenant.
func sessionClientConfig(db, token string) ClientConfig {
	cfg := DefaultClientConfig()
	cfg.CallTimeout = 5 * time.Second
	cfg.DialTimeout = 2 * time.Second
	cfg.Redials = 5
	cfg.RedialBackoff = time.Millisecond
	cfg.RedialMaxBackoff = 20 * time.Millisecond
	cfg.Database = db
	cfg.Token = token
	return cfg
}

// TestSessionHandshakeNamespacesKeys: two handshaked tenants with identical
// object names land in disjoint backend namespaces; a sessionless client
// stays in the root namespace.
func TestSessionHandshakeNamespacesKeys(t *testing.T) {
	_, backend, addr := startSessionServer(t, store.SessionLimits{})

	alpha, err := DialWith(addr, sessionClientConfig("alpha", ""))
	if err != nil {
		t.Fatal(err)
	}
	defer alpha.Close()
	beta, err := DialWith(addr, sessionClientConfig("beta", ""))
	if err != nil {
		t.Fatal(err)
	}
	defer beta.Close()
	root, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer root.Close()

	if err := alpha.CreateArray("arr", 3); err != nil {
		t.Fatal(err)
	}
	if err := beta.CreateArray("arr", 5); err != nil {
		t.Fatalf("same name in second tenant: %v", err)
	}
	if err := root.CreateArray("arr", 7); err != nil {
		t.Fatalf("same name in root namespace: %v", err)
	}
	if n, err := alpha.ArrayLen("arr"); err != nil || n != 3 {
		t.Errorf("alpha ArrayLen = %d, %v; want 3", n, err)
	}
	if n, err := beta.ArrayLen("arr"); err != nil || n != 5 {
		t.Errorf("beta ArrayLen = %d, %v; want 5", n, err)
	}
	if n, err := backend.ArrayLen("arr"); err != nil || n != 7 {
		t.Errorf("root ArrayLen = %d, %v; want 7", n, err)
	}
	if n, err := backend.ArrayLen("alpha/arr"); err != nil || n != 3 {
		t.Errorf("backend alpha/arr = %d, %v; want 3 (prefix not applied)", n, err)
	}

	// Per-tenant Stats sees only the tenant's own objects and marks.
	if err := alpha.Checkpoint(9); err != nil {
		t.Fatal(err)
	}
	st, err := alpha.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Objects != 1 || st.Epoch != 9 {
		t.Errorf("alpha Stats = %d objects epoch %d, want 1/9", st.Objects, st.Epoch)
	}
	if st, err := beta.Stats(); err != nil || st.Epoch != 0 {
		t.Errorf("beta Stats epoch = %d, %v; want 0 (alpha's checkpoint leaked)", st.Epoch, err)
	}
}

// TestSessionTokenRequired: with a token configured, bad handshakes and
// sessionless requests are refused with the fatal ErrUnauthorized — and the
// typed error survives the wire.
func TestSessionTokenRequired(t *testing.T) {
	_, _, addr := startSessionServer(t, store.SessionLimits{Token: "s3cret"})

	if _, err := DialWith(addr, sessionClientConfig("alpha", "wrong")); !errors.Is(err, store.ErrUnauthorized) {
		t.Fatalf("bad token dial: err = %v, want ErrUnauthorized", err)
	}

	// A sessionless client connects (no handshake to refuse) but every
	// request is rejected.
	root, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer root.Close()
	if err := root.CreateArray("arr", 1); !errors.Is(err, store.ErrUnauthorized) {
		t.Fatalf("sessionless request: err = %v, want ErrUnauthorized", err)
	}

	good, err := DialWith(addr, sessionClientConfig("alpha", "s3cret"))
	if err != nil {
		t.Fatal(err)
	}
	defer good.Close()
	if err := good.CreateArray("arr", 1); err != nil {
		t.Fatalf("authenticated request: %v", err)
	}
}

// TestSessionCapacityShedsHandshake: at MaxSessions the next handshake is
// refused with the retryable ErrOverloaded, and a freed slot admits it.
func TestSessionCapacityShedsHandshake(t *testing.T) {
	srv, _, addr := startSessionServer(t, store.SessionLimits{MaxSessions: 1})

	first, err := DialWith(addr, sessionClientConfig("alpha", ""))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DialWith(addr, sessionClientConfig("beta", "")); !errors.Is(err, store.ErrOverloaded) {
		t.Fatalf("over capacity: err = %v, want ErrOverloaded", err)
	}
	first.Close()
	// The session slot frees when the server notices the closed conn.
	deadline := time.Now().Add(5 * time.Second)
	for srv.Sessions().Active() > 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	second, err := DialWith(addr, sessionClientConfig("beta", ""))
	if err != nil {
		t.Fatalf("after slot freed: %v", err)
	}
	second.Close()
	if got := srv.Sessions().Rejected(); got == 0 {
		t.Error("Rejected() = 0, want at least 1")
	}
}

// TestSessionRateLimitSheds: a rate-limited session gets ErrOverloaded on
// the wire once its burst is spent, and store.WithRetry rides through the
// shedding to finish the work.
func TestSessionRateLimitSheds(t *testing.T) {
	srv, _, addr := startSessionServer(t, store.SessionLimits{RatePerSec: 5, Burst: 2})

	c, err := DialWith(addr, sessionClientConfig("alpha", ""))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.CreateArray("arr", 4); err != nil {
		t.Fatalf("first request within burst: %v", err)
	}
	if _, err := c.ArrayLen("arr"); err != nil {
		t.Fatalf("second request within burst: %v", err)
	}
	// Burst spent; at 5 req/s the next immediate request must be shed.
	if _, err := c.ArrayLen("arr"); !errors.Is(err, store.ErrOverloaded) {
		t.Fatalf("over rate: err = %v, want ErrOverloaded", err)
	}
	if got := srv.Sessions().Shed(); got == 0 {
		t.Error("Shed() = 0 after a shed request")
	}
	// The retry stack classifies the shed as retryable and succeeds once a
	// token refills.
	retried := store.WithRetry(c, store.RetryPolicy{
		MaxAttempts:    20,
		InitialBackoff: 50 * time.Millisecond,
		MaxBackoff:     500 * time.Millisecond,
	})
	if _, err := retried.ArrayLen("arr"); err != nil {
		t.Fatalf("retry through shedding: %v", err)
	}
	st, err := retried.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Retries == 0 {
		t.Error("Stats.Retries = 0; the shed path was never exercised by the retry stack")
	}
}

// TestSessionDrainRefusesNewcomers: a draining server keeps serving its
// admitted session but refuses new handshakes with the retryable error.
func TestSessionDrainRefusesNewcomers(t *testing.T) {
	srv, _, addr := startSessionServer(t, store.SessionLimits{})

	c, err := DialWith(addr, sessionClientConfig("alpha", ""))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.CreateArray("arr", 1); err != nil {
		t.Fatal(err)
	}

	srv.Sessions().Drain()
	if _, err := DialWith(addr, sessionClientConfig("beta", "")); !errors.Is(err, store.ErrOverloaded) {
		t.Fatalf("handshake during drain: err = %v, want ErrOverloaded", err)
	}
	// The admitted tenant finishes its work.
	if n, err := c.ArrayLen("arr"); err != nil || n != 1 {
		t.Errorf("admitted session during drain: %d, %v", n, err)
	}
}

// TestSessionEvictionRehandshake: an idle-evicted session's connection is
// closed server-side; the self-healing client re-dials, re-handshakes, and
// continues in the same namespace without the caller noticing.
func TestSessionEvictionRehandshake(t *testing.T) {
	srv, backend, addr := startSessionServer(t, store.SessionLimits{IdleTimeout: 10 * time.Millisecond})

	c, err := DialWith(addr, sessionClientConfig("alpha", ""))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.CreateArray("arr", 2); err != nil {
		t.Fatal(err)
	}

	// Let the session go idle past the timeout, then evict it (the server's
	// periodic sweeper would do the same; calling it directly keeps the test
	// deterministic).
	deadline := time.Now().Add(5 * time.Second)
	for srv.Sessions().Evicted() == 0 && time.Now().Before(deadline) {
		time.Sleep(15 * time.Millisecond)
		srv.Sessions().SweepIdle()
	}
	if srv.Sessions().Evicted() == 0 {
		t.Fatal("session never evicted")
	}

	// The next call rides the redial + re-handshake path transparently.
	if n, err := c.ArrayLen("arr"); err != nil || n != 2 {
		t.Fatalf("call after eviction = %d, %v; want 2", n, err)
	}
	if n, err := backend.ArrayLen("alpha/arr"); err != nil || n != 2 {
		t.Errorf("namespace lost across re-handshake: %d, %v", n, err)
	}
	if c.Reconnects() == 0 {
		t.Error("Reconnects() = 0; the eviction never forced a redial")
	}
}

// killFirstListener closes the first n accepted connections immediately,
// modeling a drop that lands between connect and hello.
type killFirstListener struct {
	net.Listener
	mu sync.Mutex
	n  int
}

func (l *killFirstListener) Accept() (net.Conn, error) {
	conn, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	l.mu.Lock()
	kill := l.n > 0
	if kill {
		l.n--
	}
	l.mu.Unlock()
	if kill {
		conn.Close()
	}
	return conn, err
}

// TestSessionDialHandshakeRidesOutDrops: a connection severed during the
// initial handshake consumes redial budget instead of failing the dial; the
// server verdict path (bad token) still fails immediately.
func TestSessionDialHandshakeRidesOutDrops(t *testing.T) {
	backend := store.NewServer()
	srv := NewServer(backend)
	srv.SetSessionLimits(store.SessionLimits{Token: "secret"})
	inner, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	l := &killFirstListener{Listener: inner, n: 2}
	go func() { _ = srv.Serve(l) }()
	t.Cleanup(func() { inner.Close() })
	addr := inner.Addr().String()

	c, err := DialWith(addr, sessionClientConfig("alpha", "secret"))
	if err != nil {
		t.Fatalf("dial through dropped handshakes: %v", err)
	}
	defer c.Close()
	if err := c.CreateArray("arr", 2); err != nil {
		t.Fatalf("CreateArray after healed handshake: %v", err)
	}
	if _, err := backend.ArrayLen("alpha/arr"); err != nil {
		t.Errorf("namespace lost: %v", err)
	}
	if c.Reconnects() < 2 {
		t.Errorf("Reconnects() = %d, want >= 2 (both kills should be redialed)", c.Reconnects())
	}

	// A server verdict must not burn redials: bad token fails at once.
	if _, err := DialWith(addr, sessionClientConfig("alpha", "wrong")); !errors.Is(err, store.ErrUnauthorized) {
		t.Fatalf("bad token dial = %v, want ErrUnauthorized", err)
	}
}
