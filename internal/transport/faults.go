package transport

import (
	"errors"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
)

// ErrInjectedDrop is the error a faulty connection reports when the chaos
// schedule severs it mid-call.
var ErrInjectedDrop = errors.New("transport: injected connection drop")

// FaultConfig parameterizes WithConnFaults.
type FaultConfig struct {
	// Seed fixes the drop schedule: the nth I/O operation across the
	// listener's connections gets the same verdict on every run.
	Seed int64
	// DropRate is the probability that one Read or Write on an accepted
	// connection severs it instead — the request or the response is lost
	// mid-flight, exactly the failure a flaky network produces.
	DropRate float64
}

// FaultyListener wraps a net.Listener so accepted connections drop on a
// deterministic, seeded schedule. Pair it with a self-healing client (or
// store.WithRetry) in chaos tests: the server side keeps killing
// connections, the client side must keep recovering.
type FaultyListener struct {
	net.Listener
	cfg FaultConfig

	mu  sync.Mutex
	rng *rand.Rand

	drops atomic.Int64
}

// WithConnFaults wraps l with seeded mid-call connection drops.
func WithConnFaults(l net.Listener, cfg FaultConfig) *FaultyListener {
	return &FaultyListener{Listener: l, cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
}

// Drops returns the number of connections severed so far.
func (l *FaultyListener) Drops() int64 { return l.drops.Load() }

// Accept wraps the accepted connection with the drop schedule. All
// connections share one schedule, so the drop sequence is a pure function
// of the seed and the global I/O-operation order.
func (l *FaultyListener) Accept() (net.Conn, error) {
	conn, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	return &faultyConn{Conn: conn, l: l}, nil
}

// roll draws one verdict from the shared schedule.
func (l *FaultyListener) roll() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.rng.Float64() < l.cfg.DropRate
}

type faultyConn struct {
	net.Conn
	l       *FaultyListener
	dropped atomic.Bool
}

func (c *faultyConn) sever() error {
	if c.dropped.CompareAndSwap(false, true) {
		c.l.drops.Add(1)
		_ = c.Conn.Close()
	}
	return ErrInjectedDrop
}

func (c *faultyConn) Read(p []byte) (int, error) {
	if c.dropped.Load() {
		return 0, ErrInjectedDrop
	}
	if c.l.roll() {
		return 0, c.sever()
	}
	return c.Conn.Read(p)
}

func (c *faultyConn) Write(p []byte) (int, error) {
	if c.dropped.Load() {
		return 0, ErrInjectedDrop
	}
	if c.l.roll() {
		return 0, c.sever()
	}
	return c.Conn.Write(p)
}
