package transport

import (
	"bytes"
	"errors"
	"fmt"
	"net"
	"testing"

	"github.com/oblivfd/oblivfd/internal/store"
)

// diskFullStub sheds every write the way a degraded durable server does.
type diskFullStub struct{ store.Service }

func (s diskFullStub) WriteCells(name string, idx []int64, cts [][]byte) error {
	return fmt.Errorf("stub: parked %q: %w", name, store.ErrDiskFull)
}

// TestDiskFullSurvivesTheWire: a degraded server's ErrDiskFull must classify
// identically on the far side of TCP — retryable, not fatal — or clients
// would abort discoveries a freed-up disk could have finished.
func TestDiskFullSurvivesTheWire(t *testing.T) {
	msg, code := encodeErr(fmt.Errorf("op: %w", store.ErrDiskFull))
	if code != codeDiskFull {
		t.Fatalf("encodeErr code = %d, want codeDiskFull", code)
	}
	if got := decodeErr(code, msg); !errors.Is(got, store.ErrDiskFull) {
		t.Fatalf("decoded %v does not match ErrDiskFull", got)
	}

	backend := diskFullStub{store.NewServer()}
	l, srv := listenServe(t, backend)
	c, err := Dial(l)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	defer srv.Shutdown(0)
	if err := c.CreateArray("a", 2); err != nil {
		t.Fatal(err)
	}
	werr := c.WriteCells("a", []int64{0}, [][]byte{{1}})
	if !errors.Is(werr, store.ErrDiskFull) {
		t.Fatalf("write over TCP = %v, want errors.Is(ErrDiskFull)", werr)
	}
	if !store.DefaultRetryable(werr) {
		t.Error("ErrDiskFull lost its retryable classification crossing the wire")
	}
	// Reads still serve: degradation is write-only.
	if _, err := c.ReadCells("a", []int64{0}); err != nil {
		t.Errorf("read from degraded server = %v, want success", err)
	}
}

// listenServe starts a transport server over backend on a loopback socket
// and returns the address.
func listenServe(t *testing.T, backend store.Service) (string, *Server) {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(backend)
	go func() { _ = srv.Serve(l) }()
	return l.Addr().String(), srv
}

// TestRepairRPCRoundTrip drives the kindRepair verb over real sockets: the
// primary rots a cell, a foreground read triggers repair, and the verified
// bytes arrive from the replica through the transport's FetchRepair.
func TestRepairRPCRoundTrip(t *testing.T) {
	nodes := startReplCluster(t, 2)
	primary := nodes[0].rep
	if err := primary.CreateArray("a", 4); err != nil {
		t.Fatal(err)
	}
	if err := primary.WriteCells("a", []int64{0, 1}, [][]byte{{10}, {20}}); err != nil {
		t.Fatal(err)
	}
	if err := primary.Durable().CorruptStored("a", false, 1, 3); err != nil {
		t.Fatal(err)
	}

	cts, err := primary.ReadCells("a", []int64{0, 1})
	if err != nil {
		t.Fatalf("read across rot = %v, want repair over the wire", err)
	}
	if !bytes.Equal(cts[0], []byte{10}) || !bytes.Equal(cts[1], []byte{20}) {
		t.Fatalf("repaired cells = %v", cts)
	}
	if primary.Repairs() == 0 {
		t.Error("no repair counted")
	}
}

// TestRepairRPCFenceChecked: a repair fetch carrying a stale fence is
// refused — a fenced-off ex-primary cannot pull state it no longer owns.
func TestRepairRPCFenceChecked(t *testing.T) {
	nodes := startReplCluster(t, 2)
	primary := nodes[0].rep
	if err := primary.CreateArray("a", 2); err != nil {
		t.Fatal(err)
	}
	if err := primary.WriteCells("a", []int64{0}, [][]byte{{10}}); err != nil {
		t.Fatal(err)
	}

	c, err := DialWith(nodes[1].addr, ClientConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// The replica learned the primary's fence from the stream; a current
	// fence is served, a stale one is refused.
	cts, err := c.FetchRepair(primary.Fence(), "a", false, []int64{0})
	if err != nil {
		t.Fatalf("current-fence fetch = %v", err)
	}
	if !bytes.Equal(cts[0], []byte{10}) {
		t.Fatalf("fetched cell = %v", cts[0])
	}
	if _, err := c.FetchRepair(primary.Fence()-1, "a", false, []int64{0}); !errors.Is(err, store.ErrFenced) {
		t.Errorf("stale-fence fetch = %v, want ErrFenced", err)
	}
}

// TestRepairRPCDonorReVerifies: a donor whose own copy is rotted answers
// ErrIntegrity instead of serving the damage onward.
func TestRepairRPCDonorReVerifies(t *testing.T) {
	nodes := startReplCluster(t, 2)
	primary := nodes[0].rep
	if err := primary.CreateArray("a", 2); err != nil {
		t.Fatal(err)
	}
	if err := primary.WriteCells("a", []int64{0}, [][]byte{{10}}); err != nil {
		t.Fatal(err)
	}
	// Rot the REPLICA's copy, then ask it to donate.
	if err := nodes[1].rep.Durable().CorruptStored("a", false, 0, 2); err != nil {
		t.Fatal(err)
	}
	c, err := DialWith(nodes[1].addr, ClientConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.FetchRepair(primary.Fence(), "a", false, []int64{0}); !errors.Is(err, store.ErrIntegrity) {
		t.Errorf("rotted donor fetch = %v, want ErrIntegrity", err)
	}
}
