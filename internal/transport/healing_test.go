package transport

import (
	"errors"
	"fmt"
	"net"
	"testing"
	"time"

	"github.com/oblivfd/oblivfd/internal/store"
)

// fastConfig keeps reconnection snappy for tests.
func fastConfig() ClientConfig {
	return ClientConfig{
		CallTimeout:      2 * time.Second,
		DialTimeout:      time.Second,
		Redials:          8,
		RedialBackoff:    time.Millisecond,
		RedialMaxBackoff: 20 * time.Millisecond,
	}
}

// TestSentinelErrorsSurviveTheWire: errors.Is must hold for every store
// sentinel after a round trip through the TCP transport.
func TestSentinelErrorsSurviveTheWire(t *testing.T) {
	c, _ := startServer(t)
	if _, err := c.ReadCells("missing", []int64{0}); !errors.Is(err, store.ErrUnknownObject) {
		t.Errorf("missing array: err = %v, want errors.Is(ErrUnknownObject)", err)
	}
	if err := c.CreateArray("a", 2); err != nil {
		t.Fatal(err)
	}
	if err := c.CreateArray("a", 2); !errors.Is(err, store.ErrObjectExists) {
		t.Errorf("duplicate create: err = %v, want errors.Is(ErrObjectExists)", err)
	}
	if _, err := c.ReadCells("a", []int64{99}); !errors.Is(err, store.ErrOutOfRange) {
		t.Errorf("out of range: err = %v, want errors.Is(ErrOutOfRange)", err)
	}
	if err := c.CreateTree("q", 2, 2); err != nil {
		t.Fatal(err)
	}
	if err := c.WritePath("q", 0, make([][]byte, 1)); !errors.Is(err, store.ErrBadPath) {
		t.Errorf("short path: err = %v, want errors.Is(ErrBadPath)", err)
	}
	// The message must survive verbatim alongside the sentinel.
	_, err := c.ReadCells("missing", []int64{0})
	if err == nil || err.Error() != `store: unknown object: array "missing"` {
		t.Errorf("message not preserved: %q", err)
	}
}

// TestWireErrorTable: every sentinel round-trips encode→decode with its
// message verbatim and errors.Is intact. The corruption sentinels must
// additionally classify as ErrIntegrity after decoding, and the encoder must
// pick the specific code (not the bare integrity code) for them — that is
// what the most-specific-first ordering of sentinelCodes guarantees.
func TestWireErrorTable(t *testing.T) {
	cases := []struct {
		name     string
		err      error
		code     errCode
		sentinel error
		alsoIs   []error
	}{
		{"unknown-object", fmt.Errorf("op: %w", store.ErrUnknownObject), codeUnknownObject, store.ErrUnknownObject, nil},
		{"object-exists", fmt.Errorf("op: %w", store.ErrObjectExists), codeObjectExists, store.ErrObjectExists, nil},
		{"out-of-range", fmt.Errorf("op: %w", store.ErrOutOfRange), codeOutOfRange, store.ErrOutOfRange, nil},
		{"bad-path", fmt.Errorf("op: %w", store.ErrBadPath), codeBadPath, store.ErrBadPath, nil},
		{"transient", fmt.Errorf("op: %w", store.ErrTransient), codeTransient, store.ErrTransient, nil},
		{"corrupt-snapshot", fmt.Errorf("op: %w", store.ErrCorruptSnapshot), codeCorruptSnapshot,
			store.ErrCorruptSnapshot, []error{store.ErrIntegrity}},
		{"corrupt-wal", fmt.Errorf("op: %w", store.ErrCorruptWAL), codeCorruptWAL,
			store.ErrCorruptWAL, []error{store.ErrIntegrity}},
		{"server-killed", fmt.Errorf("op: %w", store.ErrServerKilled), codeServerKilled, store.ErrServerKilled, nil},
		{"no-such-epoch", fmt.Errorf("op: %w", store.ErrNoSuchEpoch), codeNoSuchEpoch, store.ErrNoSuchEpoch, nil},
		{"integrity", fmt.Errorf("op: %w", store.ErrIntegrity), codeIntegrity, store.ErrIntegrity, nil},
		{"generic", errors.New("op: something else"), codeGeneric, nil, nil},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			msg, code := encodeErr(tc.err)
			if code != tc.code {
				t.Errorf("encodeErr code = %d, want %d", code, tc.code)
			}
			got := decodeErr(code, msg)
			if got == nil || got.Error() != tc.err.Error() {
				t.Errorf("message not preserved: got %v, want %q", got, tc.err.Error())
			}
			if tc.sentinel != nil && !errors.Is(got, tc.sentinel) {
				t.Errorf("decoded error does not match its sentinel %v", tc.sentinel)
			}
			for _, e := range tc.alsoIs {
				if !errors.Is(got, e) {
					t.Errorf("decoded error should also match %v", e)
				}
			}
		})
	}
	if msg, code := encodeErr(nil); code != codeOK || msg != "" {
		t.Errorf("encodeErr(nil) = (%q, %d), want empty codeOK", msg, code)
	}
	if err := decodeErr(codeOK, ""); err != nil {
		t.Errorf("decodeErr(codeOK) = %v, want nil", err)
	}
}

// integrityStub is a backend whose reads always fail verification, standing
// in for a durable server that detected corruption during recovery.
type integrityStub struct{ store.Service }

func (s integrityStub) ReadCells(name string, idx []int64) ([][]byte, error) {
	return nil, fmt.Errorf("stub: array %q failed verification: %w", name, store.ErrIntegrity)
}

// TestIntegrityErrorSurvivesTheWire: ErrIntegrity classifies correctly on
// the client through TCP and is fatal — the retry layer must never retry a
// verification failure, because the data will be just as corrupt next time.
func TestIntegrityErrorSurvivesTheWire(t *testing.T) {
	backend := integrityStub{store.NewServer()}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = Serve(l, backend) }()
	t.Cleanup(func() { l.Close() })
	c, err := Dial(l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.CreateArray("a", 1); err != nil {
		t.Fatal(err)
	}
	_, err = c.ReadCells("a", []int64{0})
	if !errors.Is(err, store.ErrIntegrity) {
		t.Errorf("err = %v, want errors.Is(ErrIntegrity) through TCP", err)
	}
	if store.DefaultRetryable(err) {
		t.Errorf("integrity error classified retryable; corruption must be fatal")
	}
}

// TestTransientErrorsSurviveTheWire: a server-side fault injector's
// ErrTransient classifies correctly on the client, which is what lets a
// client-side retry layer tell transient from fatal through TCP.
func TestTransientErrorsSurviveTheWire(t *testing.T) {
	backend := store.WithFaults(store.NewServer(), store.FaultConfig{Seed: 1, ErrorRate: 1})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = Serve(l, backend) }()
	t.Cleanup(func() { l.Close() })
	c, err := Dial(l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.CreateArray("a", 1); !errors.Is(err, store.ErrTransient) {
		t.Errorf("err = %v, want errors.Is(ErrTransient) through TCP", err)
	}
}

// TestDialNonListeningAddr: dialing a dead address surfaces a typed,
// retryable error.
func TestDialNonListeningAddr(t *testing.T) {
	_, err := DialWith("127.0.0.1:1", fastConfig())
	if !errors.Is(err, store.ErrUnavailable) {
		t.Errorf("err = %v, want errors.Is(ErrUnavailable)", err)
	}
	if !store.DefaultRetryable(err) {
		t.Errorf("dial failure should classify as retryable: %v", err)
	}
}

// TestClientHealsAcrossServerRestart: the server dies mid-session and comes
// back on the same address; the client's next call re-dials transparently.
func TestClientHealsAcrossServerRestart(t *testing.T) {
	backend := store.NewServer()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	srv := NewServer(backend)
	done := make(chan struct{})
	go func() { defer close(done); _ = srv.Serve(l) }()

	c, err := DialWith(addr, fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.CreateArray("a", 4); err != nil {
		t.Fatal(err)
	}

	srv.Shutdown(0) // kill the server, connections included
	<-done

	// Restart on the same address (may need a few tries on a busy host).
	var l2 net.Listener
	for i := 0; i < 50; i++ {
		l2, err = net.Listen("tcp", addr)
		if err == nil {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err != nil {
		t.Skipf("could not rebind %s: %v", addr, err)
	}
	defer l2.Close()
	go func() { _ = Serve(l2, backend) }()

	if err := c.WriteCells("a", []int64{1}, [][]byte{{9}}); err != nil {
		t.Fatalf("call after server restart: %v", err)
	}
	got, err := c.ReadCells("a", []int64{1})
	if err != nil || len(got) != 1 || got[0][0] != 9 {
		t.Fatalf("read after heal = %v, %v", got, err)
	}
	if c.Reconnects() == 0 {
		t.Error("client healed without counting a reconnect")
	}
	st, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Reconnects == 0 {
		t.Error("Stats.Reconnects not surfaced")
	}
}

// TestClientFailsWhenServerStaysDown: with the server gone for good, the
// call fails with a typed error after the redial budget.
func TestClientFailsWhenServerStaysDown(t *testing.T) {
	backend := store.NewServer()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(backend)
	go func() { _ = srv.Serve(l) }()
	cfg := fastConfig()
	cfg.Redials = 2
	c, err := DialWith(l.Addr().String(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.CreateArray("a", 1); err != nil {
		t.Fatal(err)
	}
	srv.Shutdown(0)
	if err := c.Reveal("x", 1); !errors.Is(err, store.ErrUnavailable) {
		t.Errorf("err = %v, want errors.Is(ErrUnavailable)", err)
	}
	if !c.Broken() {
		t.Error("client not marked broken after exhausting redials")
	}
}

// TestPoolReplacesDeadConnections: every pooled connection dies with the
// old server; borrowing from the pool against a new server on the same
// address recovers, replacing dead connections as they fail.
func TestPoolReplacesDeadConnections(t *testing.T) {
	backend := store.NewServer()
	if err := backend.CreateArray("a", 64); err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	srv := NewServer(backend)
	done := make(chan struct{})
	go func() { defer close(done); _ = srv.Serve(l) }()

	p, err := DialPoolWith(addr, 3, fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if err := p.WriteCells("a", []int64{0}, [][]byte{{1}}); err != nil {
		t.Fatal(err)
	}

	srv.Shutdown(0)
	<-done
	var l2 net.Listener
	for i := 0; i < 50; i++ {
		l2, err = net.Listen("tcp", addr)
		if err == nil {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err != nil {
		t.Skipf("could not rebind %s: %v", addr, err)
	}
	defer l2.Close()
	go func() { _ = Serve(l2, backend) }()

	// Exercise every slot: all three dead connections must recover.
	for i := 0; i < 9; i++ {
		if err := p.WriteCells("a", []int64{int64(i)}, [][]byte{{byte(i)}}); err != nil {
			t.Fatalf("pooled write %d after restart: %v", i, err)
		}
	}
	if p.Reconnects() == 0 {
		t.Error("pool recovered without counting reconnects")
	}
	st, err := p.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Reconnects == 0 {
		t.Error("Stats.Reconnects not surfaced through the pool")
	}
	if p.Size() != 3 {
		t.Errorf("pool size changed to %d", p.Size())
	}
}

// TestServerGracefulShutdownDrains: a request in flight when Shutdown
// begins still gets its response; idle connections are closed.
func TestServerGracefulShutdownDrains(t *testing.T) {
	backend := store.NewServer()
	if err := backend.CreateArray("a", 4); err != nil {
		t.Fatal(err)
	}
	slow := store.WithLatency(backend, 50*time.Millisecond)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(slow)
	done := make(chan struct{})
	go func() { defer close(done); _ = srv.Serve(l) }()

	cfg := fastConfig()
	cfg.Redials = -1 // observe the raw drain, no healing
	c, err := DialWith(l.Addr().String(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Reveal("warm", 1); err != nil {
		t.Fatal(err) // establish the connection server-side
	}
	if srv.ActiveConns() != 1 {
		t.Errorf("ActiveConns = %d, want 1", srv.ActiveConns())
	}

	callErr := make(chan error, 1)
	go func() { callErr <- c.WriteCells("a", []int64{0}, [][]byte{{7}}) }()
	time.Sleep(10 * time.Millisecond) // let the call reach the 50ms-slow server
	active := srv.Shutdown(time.Second)
	if active != 1 {
		t.Errorf("Shutdown reported %d active conns, want 1", active)
	}
	if err := <-callErr; err != nil {
		t.Errorf("in-flight call during graceful shutdown: %v", err)
	}
	got, err := backend.ReadCells("a", []int64{0})
	if err != nil || got[0][0] != 7 {
		t.Errorf("drained write not applied: %v, %v", got, err)
	}
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Error("Serve did not return after Shutdown")
	}
	if srv.ActiveConns() != 0 {
		t.Errorf("ActiveConns after shutdown = %d", srv.ActiveConns())
	}
}

// TestServerShutdownZeroGrace: an abrupt shutdown still returns and closes
// everything.
func TestServerShutdownZeroGrace(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(store.NewServer())
	done := make(chan struct{})
	go func() { defer close(done); _ = srv.Serve(l) }()
	c, err := DialWith(l.Addr().String(), fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.CreateArray("a", 1); err != nil {
		t.Fatal(err)
	}
	srv.Shutdown(0)
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Error("Serve did not return after zero-grace Shutdown")
	}
}
