// Package transport connects the client C to the server S. Protocol code
// only depends on store.Service; this package provides two interchangeable
// ways to obtain one:
//
//   - in-process: use a *store.Server directly (it implements the interface)
//   - TCP: Serve exposes a store.Service on a listener, Dial returns a
//     store.Service proxy that forwards every call over a gob-encoded,
//     length-delimited stream — the deployment shape of the paper's
//     evaluation (client and server on separate machines, §VII-A).
//
// Every request/response crossing the wire carries only what the persistent
// adversary is allowed to see anyway: object names, indices, and
// ciphertexts.
package transport

import (
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"

	"github.com/oblivfd/oblivfd/internal/store"
)

// ErrClosed is returned by calls on a closed client.
var ErrClosed = errors.New("transport: connection closed")

type kind uint8

const (
	kindCreateArray kind = iota
	kindArrayLen
	kindReadCells
	kindWriteCells
	kindCreateTree
	kindReadPath
	kindWritePath
	kindWriteBuckets
	kindDelete
	kindReveal
	kindStats
)

// request is the wire format for one Service call.
type request struct {
	Kind   kind
	Name   string
	N      int
	Levels int
	Slots  int
	Idx    []int64
	Cts    [][]byte
	Leaf   uint32
	Value  int64
}

// response is the wire format for one Service result.
type response struct {
	Err   string
	N     int
	Cts   [][]byte
	Stats store.Stats
}

// Serve accepts connections on l and dispatches requests to svc until the
// listener is closed. Each connection is served by its own goroutine; calls
// within one connection execute sequentially, matching the client proxy.
func Serve(l net.Listener, svc store.Service) error {
	for {
		conn, err := l.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return fmt.Errorf("transport: accept: %w", err)
		}
		go serveConn(conn, svc)
	}
}

func serveConn(conn net.Conn, svc store.Service) {
	defer conn.Close()
	dec := gob.NewDecoder(conn)
	enc := gob.NewEncoder(conn)
	for {
		var req request
		if err := dec.Decode(&req); err != nil {
			return // io.EOF on clean shutdown; anything else also ends the conn
		}
		resp := dispatch(svc, &req)
		if err := enc.Encode(resp); err != nil {
			return
		}
	}
}

func dispatch(svc store.Service, req *request) *response {
	var resp response
	fail := func(err error) *response {
		if err != nil {
			resp.Err = err.Error()
		}
		return &resp
	}
	switch req.Kind {
	case kindCreateArray:
		return fail(svc.CreateArray(req.Name, req.N))
	case kindArrayLen:
		n, err := svc.ArrayLen(req.Name)
		resp.N = n
		return fail(err)
	case kindReadCells:
		cts, err := svc.ReadCells(req.Name, req.Idx)
		resp.Cts = cts
		return fail(err)
	case kindWriteCells:
		return fail(svc.WriteCells(req.Name, req.Idx, req.Cts))
	case kindCreateTree:
		return fail(svc.CreateTree(req.Name, req.Levels, req.Slots))
	case kindReadPath:
		cts, err := svc.ReadPath(req.Name, req.Leaf)
		resp.Cts = cts
		return fail(err)
	case kindWritePath:
		return fail(svc.WritePath(req.Name, req.Leaf, req.Cts))
	case kindWriteBuckets:
		return fail(svc.WriteBuckets(req.Name, req.N, req.Cts))
	case kindDelete:
		return fail(svc.Delete(req.Name))
	case kindReveal:
		return fail(svc.Reveal(req.Name, req.Value))
	case kindStats:
		st, err := svc.Stats()
		resp.Stats = st
		return fail(err)
	default:
		resp.Err = fmt.Sprintf("transport: unknown request kind %d", req.Kind)
		return &resp
	}
}

// Client is a store.Service proxy over one TCP connection. It is safe for
// concurrent use; calls are serialized on the connection.
type Client struct {
	mu     sync.Mutex
	conn   net.Conn
	enc    *gob.Encoder
	dec    *gob.Decoder
	closed bool
}

var _ store.Service = (*Client)(nil)

// Dial connects to a transport server.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: dial %s: %w", addr, err)
	}
	return NewClient(conn), nil
}

// NewClient wraps an established connection.
func NewClient(conn net.Conn) *Client {
	return &Client{conn: conn, enc: gob.NewEncoder(conn), dec: gob.NewDecoder(conn)}
}

// Close shuts the connection down.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil
	}
	c.closed = true
	return c.conn.Close()
}

func (c *Client) call(req *request) (*response, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil, ErrClosed
	}
	if err := c.enc.Encode(req); err != nil {
		return nil, fmt.Errorf("transport: send: %w", err)
	}
	var resp response
	if err := c.dec.Decode(&resp); err != nil {
		if errors.Is(err, io.EOF) {
			return nil, fmt.Errorf("transport: server closed connection: %w", err)
		}
		return nil, fmt.Errorf("transport: receive: %w", err)
	}
	if resp.Err != "" {
		return &resp, errors.New(resp.Err)
	}
	return &resp, nil
}

// CreateArray implements store.Service.
func (c *Client) CreateArray(name string, n int) error {
	_, err := c.call(&request{Kind: kindCreateArray, Name: name, N: n})
	return err
}

// ArrayLen implements store.Service.
func (c *Client) ArrayLen(name string) (int, error) {
	resp, err := c.call(&request{Kind: kindArrayLen, Name: name})
	if err != nil {
		return 0, err
	}
	return resp.N, nil
}

// ReadCells implements store.Service.
func (c *Client) ReadCells(name string, idx []int64) ([][]byte, error) {
	resp, err := c.call(&request{Kind: kindReadCells, Name: name, Idx: idx})
	if err != nil {
		return nil, err
	}
	return resp.Cts, nil
}

// WriteCells implements store.Service.
func (c *Client) WriteCells(name string, idx []int64, cts [][]byte) error {
	_, err := c.call(&request{Kind: kindWriteCells, Name: name, Idx: idx, Cts: cts})
	return err
}

// CreateTree implements store.Service.
func (c *Client) CreateTree(name string, levels, slotsPerBucket int) error {
	_, err := c.call(&request{Kind: kindCreateTree, Name: name, Levels: levels, Slots: slotsPerBucket})
	return err
}

// ReadPath implements store.Service.
func (c *Client) ReadPath(name string, leaf uint32) ([][]byte, error) {
	resp, err := c.call(&request{Kind: kindReadPath, Name: name, Leaf: leaf})
	if err != nil {
		return nil, err
	}
	return resp.Cts, nil
}

// WritePath implements store.Service.
func (c *Client) WritePath(name string, leaf uint32, slots [][]byte) error {
	_, err := c.call(&request{Kind: kindWritePath, Name: name, Leaf: leaf, Cts: slots})
	return err
}

// WriteBuckets implements store.Service.
func (c *Client) WriteBuckets(name string, bucketStart int, slots [][]byte) error {
	_, err := c.call(&request{Kind: kindWriteBuckets, Name: name, N: bucketStart, Cts: slots})
	return err
}

// Delete implements store.Service.
func (c *Client) Delete(name string) error {
	_, err := c.call(&request{Kind: kindDelete, Name: name})
	return err
}

// Reveal implements store.Service.
func (c *Client) Reveal(tag string, value int64) error {
	_, err := c.call(&request{Kind: kindReveal, Name: tag, Value: value})
	return err
}

// Stats implements store.Service.
func (c *Client) Stats() (store.Stats, error) {
	resp, err := c.call(&request{Kind: kindStats})
	if err != nil {
		return store.Stats{}, err
	}
	return resp.Stats, nil
}
