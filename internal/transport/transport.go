// Package transport connects the client C to the server S. Protocol code
// only depends on store.Service; this package provides two interchangeable
// ways to obtain one:
//
//   - in-process: use a *store.Server directly (it implements the interface)
//   - TCP: Serve exposes a store.Service on a listener, Dial returns a
//     store.Service proxy that forwards every call over a gob-encoded,
//     length-delimited stream — the deployment shape of the paper's
//     evaluation (client and server on separate machines, §VII-A).
//
// The TCP client is self-healing: every call runs under an optional
// read/write deadline, and a broken connection is re-dialed with backoff
// and the call re-sent. Re-sending is protocol-safe because every write
// stores the exact ciphertexts carried by the request (see
// store.RetryService for the idempotency and leakage argument); the one
// ambiguity — a create or delete whose acknowledgement was lost — is
// reconciled from the server's verdict on the resend.
//
// Every request/response crossing the wire carries only what the persistent
// adversary is allowed to see anyway: object names, indices, and
// ciphertexts.
//
// Multi-tenancy: a client configured with a Database (and optionally a
// Token) opens its connection with a session handshake (kindHello). The
// server authenticates it, admits it against the session budget, and scopes
// every subsequent request on that connection to the database's namespace —
// object names are prefixed server-side, so N clients on M databases share
// one backend without key collisions. The handshake is replayed after every
// re-dial, so a self-healed connection rejoins its namespace before any
// request is re-sent. Connections that never handshake behave exactly as
// before (root namespace, no admission control) unless the server requires
// a token.
package transport

import (
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"github.com/oblivfd/oblivfd/internal/otrace"
	"github.com/oblivfd/oblivfd/internal/store"
	"github.com/oblivfd/oblivfd/internal/telemetry"
)

// ErrClosed is returned by calls on a closed client.
var ErrClosed = errors.New("transport: connection closed")

type kind uint8

const (
	kindCreateArray kind = iota
	kindArrayLen
	kindReadCells
	kindWriteCells
	kindCreateTree
	kindReadPath
	kindWritePath
	kindWriteBuckets
	kindDelete
	kindReveal
	kindStats
	kindCheckpoint
	kindBatch
	kindHello     // session handshake: Name = database namespace, Token = auth
	kindReplicate // primary -> replica: framed WAL records (Value = fence, Seq, Cts)
	kindSync      // primary -> replica: full snapshot resync (Value = fence, Seq, Cts[0])
	kindPromote   // failover client -> replica: adopt fence and primary role (Value = fence)
	kindTraceDump // operator: fetch the server's span ring (Name = trace-ID filter)
	kindRepair    // peer -> peer: fetch verified ciphertexts for self-healing (Value = fence, Name, N = tree flag, Idx)
	numKinds
)

// kindNames maps wire kinds to the Service method names used as metric
// labels.
var kindNames = [numKinds]string{
	"CreateArray", "ArrayLen", "ReadCells", "WriteCells",
	"CreateTree", "ReadPath", "WritePath", "WriteBuckets",
	"Delete", "Reveal", "Stats", "Checkpoint", "Batch", "Hello",
	"Replicate", "Sync", "Promote", "TraceDump", "Repair",
}

// rpcSpanNames and serverSpanNames pre-build the per-kind span names so the
// per-call path never concatenates strings.
var rpcSpanNames, serverSpanNames [numKinds]string

func init() {
	for k, op := range kindNames {
		rpcSpanNames[k] = "rpc/" + op
		serverSpanNames[k] = "server/" + op
	}
}

// rpcHistograms pre-creates one latency histogram per RPC kind so the
// per-call path never touches the registry map.
func rpcHistograms(reg *telemetry.Registry, name string) *[numKinds]*telemetry.Histogram {
	var h [numKinds]*telemetry.Histogram
	for k, op := range kindNames {
		h[k] = reg.Histogram(name, "op", op)
	}
	return &h
}

// request is the wire format for one Service call. A kindBatch request
// carries its cell operations in Ops; the response flattens every read's
// ciphertexts into Cts in op order (writes contribute nothing), and the
// client splits them back apart by each read op's index count.
type request struct {
	Kind   kind
	Name   string
	N      int
	Levels int
	Slots  int
	Idx    []int64
	Cts    [][]byte
	Leaf   uint32
	Value  int64
	Seq    int64 // replication stream position (kindReplicate/kindSync)
	Ops    []store.BatchOp
	Token  string // session auth token (kindHello and replication kinds)
	// Ctx is the distributed-tracing context header. It is fixed-size and
	// always present: otrace.Wire returns exactly WireSize bytes with a
	// non-zero version byte even for the zero context, so gob never elides
	// the field, and gob's byte-string encoding (length prefix + raw
	// bytes) costs the same number of frame bytes no matter what IDs the
	// header carries. Every frame of a given request therefore has exactly
	// the same length whether tracing is off, on, sampled, or unsampled:
	// the adversary's view is independent of tracing state (DESIGN.md
	// §14). Deliberately a byte string, not a [WireSize]byte array — gob
	// encodes array elements as per-element varints, which would make
	// frame length depend on the ID bytes' values.
	Ctx []byte
}

// errCode identifies a store sentinel error on the wire, so errors.Is keeps
// working through TCP (and so the retry layer can classify remote errors).
type errCode uint8

const (
	codeOK errCode = iota
	codeGeneric
	codeUnknownObject
	codeObjectExists
	codeOutOfRange
	codeBadPath
	codeTransient
	codeCorruptSnapshot
	codeCorruptWAL
	codeServerKilled
	codeNoSuchEpoch
	codeIntegrity
	codeOverloaded
	codeUnauthorized
	codeNotPrimary
	codeFenced
	codeDiskFull
)

// codeSentinel maps wire codes back to the sentinel errors they stand for.
var codeSentinel = map[errCode]error{
	codeUnknownObject:   store.ErrUnknownObject,
	codeObjectExists:    store.ErrObjectExists,
	codeOutOfRange:      store.ErrOutOfRange,
	codeBadPath:         store.ErrBadPath,
	codeTransient:       store.ErrTransient,
	codeCorruptSnapshot: store.ErrCorruptSnapshot,
	codeCorruptWAL:      store.ErrCorruptWAL,
	codeServerKilled:    store.ErrServerKilled,
	codeNoSuchEpoch:     store.ErrNoSuchEpoch,
	codeIntegrity:       store.ErrIntegrity,
	codeOverloaded:      store.ErrOverloaded,
	codeUnauthorized:    store.ErrUnauthorized,
	codeNotPrimary:      store.ErrNotPrimary,
	codeFenced:          store.ErrFenced,
	codeDiskFull:        store.ErrDiskFull,
}

// sentinelCodes is the classification order for encoding: most specific
// first. Order matters because sentinels may imply one another —
// ErrCorruptSnapshot and ErrCorruptWAL both match ErrIntegrity under
// errors.Is, so the bare ErrIntegrity code must be checked after them or the
// wire would lose the specific sentinel (a map iteration here would pick one
// nondeterministically).
var sentinelCodes = []struct {
	code errCode
	err  error
}{
	{codeUnknownObject, store.ErrUnknownObject},
	{codeObjectExists, store.ErrObjectExists},
	{codeOutOfRange, store.ErrOutOfRange},
	{codeBadPath, store.ErrBadPath},
	{codeTransient, store.ErrTransient},
	{codeCorruptSnapshot, store.ErrCorruptSnapshot},
	{codeCorruptWAL, store.ErrCorruptWAL},
	{codeServerKilled, store.ErrServerKilled},
	{codeNoSuchEpoch, store.ErrNoSuchEpoch},
	{codeIntegrity, store.ErrIntegrity},
	{codeOverloaded, store.ErrOverloaded},
	{codeUnauthorized, store.ErrUnauthorized},
	{codeNotPrimary, store.ErrNotPrimary},
	{codeFenced, store.ErrFenced},
	{codeDiskFull, store.ErrDiskFull},
}

// encodeErr flattens an error for the wire, preserving its most specific
// sentinel.
func encodeErr(err error) (string, errCode) {
	if err == nil {
		return "", codeOK
	}
	for _, sc := range sentinelCodes {
		if errors.Is(err, sc.err) {
			return err.Error(), sc.code
		}
	}
	return err.Error(), codeGeneric
}

// wireError rehydrates a remote error: the exact message, unwrapping to the
// sentinel it was classified as.
type wireError struct {
	msg      string
	sentinel error
}

func (e *wireError) Error() string { return e.msg }
func (e *wireError) Unwrap() error { return e.sentinel }

// decodeErr rebuilds a remote error from its wire form.
func decodeErr(code errCode, msg string) error {
	if msg == "" {
		return nil
	}
	if sentinel, ok := codeSentinel[code]; ok {
		return &wireError{msg: msg, sentinel: sentinel}
	}
	return errors.New(msg)
}

// response is the wire format for one Service result.
type response struct {
	Err   string
	Code  errCode
	N     int
	Cts   [][]byte
	Stats store.Stats
	Fence int64 // replication responses: the responder's fencing epoch
	Seq   int64 // replication responses: the responder's watermark
}

func dispatch(svc store.Service, req *request) *response {
	var resp response
	fail := func(err error) *response {
		resp.Err, resp.Code = encodeErr(err)
		return &resp
	}
	switch req.Kind {
	case kindCreateArray:
		return fail(svc.CreateArray(req.Name, req.N))
	case kindArrayLen:
		n, err := svc.ArrayLen(req.Name)
		resp.N = n
		return fail(err)
	case kindReadCells:
		cts, err := svc.ReadCells(req.Name, req.Idx)
		resp.Cts = cts
		return fail(err)
	case kindWriteCells:
		return fail(svc.WriteCells(req.Name, req.Idx, req.Cts))
	case kindCreateTree:
		return fail(svc.CreateTree(req.Name, req.Levels, req.Slots))
	case kindReadPath:
		cts, err := svc.ReadPath(req.Name, req.Leaf)
		resp.Cts = cts
		return fail(err)
	case kindWritePath:
		return fail(svc.WritePath(req.Name, req.Leaf, req.Cts))
	case kindWriteBuckets:
		return fail(svc.WriteBuckets(req.Name, req.N, req.Cts))
	case kindDelete:
		return fail(svc.Delete(req.Name))
	case kindReveal:
		return fail(svc.Reveal(req.Name, req.Value))
	case kindStats:
		st, err := svc.Stats()
		resp.Stats = st
		return fail(err)
	case kindCheckpoint:
		return fail(svc.Checkpoint(req.Value))
	case kindBatch:
		res, err := store.DoBatch(svc, req.Ops)
		if err == nil {
			for _, cts := range res {
				resp.Cts = append(resp.Cts, cts...)
			}
		}
		return fail(err)
	default:
		resp.Err = fmt.Sprintf("transport: unknown request kind %d", req.Kind)
		resp.Code = codeGeneric
		return &resp
	}
}

// ClientConfig tunes the self-healing behaviour of a TCP client. The zero
// value of any field selects the default noted on it.
type ClientConfig struct {
	// CallTimeout is the read/write deadline applied to the connection for
	// each call (default 2m; negative disables). A call that exceeds it
	// fails with a timeout, the connection is torn down, and — when the
	// client knows its dial address — re-dialed.
	CallTimeout time.Duration
	// DialTimeout bounds each (re-)dial attempt (default 10s).
	DialTimeout time.Duration
	// Redials is how many re-dial-and-resend attempts one call may make
	// after its connection breaks (default 5; negative disables
	// self-healing).
	Redials int
	// RedialBackoff is the delay before the first re-dial (default 50ms),
	// doubling per attempt up to RedialMaxBackoff (default 2s).
	RedialBackoff    time.Duration
	RedialMaxBackoff time.Duration
	// Metrics, when set, records client-side per-RPC latency
	// (oblivfd_rpc_client_seconds{op=...}) and backs the reconnect counter
	// with the shared series oblivfd_client_reconnects_total, so every
	// client and pool built from this config reports into one place.
	Metrics *telemetry.Registry
	// Database, when non-empty, opens a session handshake binding this
	// connection to the named database namespace: the server prefixes every
	// object name with "<Database>/", isolating this client from other
	// tenants. Empty means the root namespace with no handshake (the
	// single-tenant behaviour). Each pooled connection opens its own
	// session, so a pool of size P counts P sessions against the server's
	// -max-sessions budget.
	Database string
	// Token is the auth token presented in the session handshake. Required
	// when the server was started with -session-token; a mismatch fails the
	// dial with store.ErrUnauthorized. Setting only Token (no Database)
	// still opens a session, bound to the root namespace.
	Token string
	// Trace, when set, starts one client-side span per RPC (named
	// rpc/<op>, parented under the goroutine's bound span) and stamps its
	// context into the frame header so server-side spans link causally to
	// it. Nil disables span recording; the frame header is carried at
	// constant size either way.
	Trace *otrace.Tracer
	// Fence, when positive, is carried in the session handshake: the
	// client's view of the cluster's fencing epoch. A server that believes
	// it is primary at a lower fence learns it was deposed and refuses the
	// session with store.ErrFenced; a client whose fence is stale gets the
	// same refusal and re-probes. Zero means fence-unaware (single-server
	// deployments).
	Fence int64
}

// DefaultClientConfig returns the defaults documented on ClientConfig.
func DefaultClientConfig() ClientConfig {
	return ClientConfig{
		CallTimeout:      2 * time.Minute,
		DialTimeout:      10 * time.Second,
		Redials:          5,
		RedialBackoff:    50 * time.Millisecond,
		RedialMaxBackoff: 2 * time.Second,
	}
}

// withDefaults fills zero fields.
func (cfg ClientConfig) withDefaults() ClientConfig {
	def := DefaultClientConfig()
	if cfg.CallTimeout == 0 {
		cfg.CallTimeout = def.CallTimeout
	}
	if cfg.DialTimeout == 0 {
		cfg.DialTimeout = def.DialTimeout
	}
	if cfg.Redials == 0 {
		cfg.Redials = def.Redials
	}
	if cfg.RedialBackoff == 0 {
		cfg.RedialBackoff = def.RedialBackoff
	}
	if cfg.RedialMaxBackoff == 0 {
		cfg.RedialMaxBackoff = def.RedialMaxBackoff
	}
	return cfg
}

// Client is a store.Service proxy over one TCP connection. It is safe for
// concurrent use; calls are serialized on the connection. When created by
// Dial it self-heals: a broken connection is re-dialed and the in-flight
// call re-sent.
type Client struct {
	addr string // empty when wrapped around a raw conn (no re-dial)
	cfg  ClientConfig

	mu     sync.Mutex
	conn   net.Conn
	enc    *gob.Encoder
	dec    *gob.Decoder
	closed bool

	// reconnects is registry-backed (shared across all clients built from
	// the same config) when cfg.Metrics is set, standalone otherwise.
	reconnects *telemetry.Counter
	shared     bool
	lat        *[numKinds]*telemetry.Histogram // nil when metrics are off
}

var (
	_ store.Service       = (*Client)(nil)
	_ store.RepairFetcher = (*Client)(nil)
)

// Dial connects to a transport server with the default self-healing
// configuration.
func Dial(addr string) (*Client, error) {
	return DialWith(addr, DefaultClientConfig())
}

// DialWith connects to a transport server with an explicit configuration.
func DialWith(addr string, cfg ClientConfig) (*Client, error) {
	cfg = cfg.withDefaults()
	conn, err := net.DialTimeout("tcp", addr, cfg.DialTimeout)
	if err != nil {
		return nil, fmt.Errorf("transport: dial %s: %w: %w", addr, store.ErrUnavailable, err)
	}
	c := NewClient(conn)
	c.addr = addr
	c.cfg = cfg
	if cfg.Metrics != nil {
		c.reconnects = cfg.Metrics.Counter("oblivfd_client_reconnects_total")
		c.shared = true
		c.lat = rpcHistograms(cfg.Metrics, "oblivfd_rpc_client_seconds")
	}
	if c.sessioned() {
		if err := c.dialHandshake(); err != nil {
			return nil, fmt.Errorf("transport: session handshake with %s: %w", addr, err)
		}
	}
	return c, nil
}

// dialHandshake runs the initial session handshake, re-dialing on transient
// transport failures (an injected drop can land between connect and hello,
// exactly like mid-call). Server verdicts — bad credentials, admission
// refusal — return immediately: retrying those inside Dial would hide the
// typed error the caller's retry layer is meant to see.
func (c *Client) dialHandshake() error {
	redials := 0
	for {
		err := c.handshakeLocked()
		if err == nil {
			return nil
		}
		c.dropConnLocked()
		if errors.Is(err, store.ErrUnauthorized) || errors.Is(err, store.ErrOverloaded) ||
			errors.Is(err, store.ErrFenced) || errors.Is(err, store.ErrNotPrimary) {
			// Role verdicts included: re-dialing the same server cannot make
			// it the primary — the failover layer must re-probe instead.
			return err
		}
		if redials >= c.cfg.Redials || c.cfg.Redials < 0 {
			return err
		}
		backoff := c.cfg.RedialBackoff << redials
		if backoff > c.cfg.RedialMaxBackoff {
			backoff = c.cfg.RedialMaxBackoff
		}
		time.Sleep(backoff)
		redials++
		if derr := c.redialLocked(); derr != nil {
			return fmt.Errorf("transport: dial %s: %w: %w", c.addr, store.ErrUnavailable, derr)
		}
	}
}

// NewClient wraps an established connection. A client built this way does
// not know its peer's address and therefore cannot re-dial: a broken
// connection fails the call (this is the seed behaviour, kept for tests
// and custom conn types).
func NewClient(conn net.Conn) *Client {
	return &Client{
		cfg:        ClientConfig{CallTimeout: -1, Redials: -1},
		conn:       conn,
		enc:        gob.NewEncoder(conn),
		dec:        gob.NewDecoder(conn),
		reconnects: telemetry.NewCounter(),
	}
}

// Close shuts the connection down.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil
	}
	c.closed = true
	if c.conn == nil {
		return nil
	}
	return c.conn.Close()
}

// Reconnects returns how many times this client re-dialed its server. With
// a Metrics registry configured the counter is shared, so this is the total
// across every client built from the same config.
func (c *Client) Reconnects() int64 { return c.reconnects.Value() }

// Broken reports whether the client currently has no live connection (its
// last call tore the connection down and could not re-establish it). A
// pool uses this to replace the client.
func (c *Client) Broken() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.conn == nil && !c.closed
}

// dropConnLocked tears down a failed connection. Caller holds c.mu.
func (c *Client) dropConnLocked() {
	if c.conn != nil {
		_ = c.conn.Close()
	}
	c.conn, c.enc, c.dec = nil, nil, nil
}

// redialLocked re-establishes the connection. Caller holds c.mu.
func (c *Client) redialLocked() error {
	conn, err := net.DialTimeout("tcp", c.addr, c.cfg.DialTimeout)
	if err != nil {
		return err
	}
	c.conn = conn
	c.enc = gob.NewEncoder(conn)
	c.dec = gob.NewDecoder(conn)
	c.reconnects.Inc()
	return nil
}

// sessioned reports whether this client opens a session handshake on each
// connection.
func (c *Client) sessioned() bool {
	return c.cfg.Database != "" || c.cfg.Token != "" || c.cfg.Fence > 0
}

// handshakeLocked performs the session handshake on the current connection:
// it announces the database namespace and auth token and waits for the
// server's verdict. Called after the initial dial and after every re-dial,
// so a self-healed connection always rejoins its namespace before any
// request is re-sent. Caller holds c.mu (or has exclusive access during
// dial).
func (c *Client) handshakeLocked() error {
	if c.cfg.CallTimeout > 0 {
		_ = c.conn.SetDeadline(time.Now().Add(c.cfg.CallTimeout))
	}
	req := request{Kind: kindHello, Name: c.cfg.Database, Token: c.cfg.Token, Value: c.cfg.Fence}
	req.Ctx = otrace.SpanContext{}.Wire() // constant-size header, like every frame
	if err := c.enc.Encode(&req); err != nil {
		return fmt.Errorf("transport: handshake send: %w", err)
	}
	var resp response
	if err := c.dec.Decode(&resp); err != nil {
		return fmt.Errorf("transport: handshake receive: %w", err)
	}
	return decodeErr(resp.Code, resp.Err)
}

// reconcileResend resolves the create/delete ambiguity after a resend: if
// the first attempt's acknowledgement was lost but the operation applied,
// the resend's semantic error proves it. The inference is scoped to the
// session's database namespace — the handshake binds this connection to one
// database, every name it sends is prefixed into that namespace
// server-side, and each database has a single writing client (see
// store.RetryService) — so a concurrent tenant in another namespace can
// never be the one that created or deleted the object and the verdict is
// unambiguous.
func reconcileResend(k kind, err error) bool {
	switch k {
	case kindCreateArray, kindCreateTree:
		return errors.Is(err, store.ErrObjectExists)
	case kindDelete:
		return errors.Is(err, store.ErrUnknownObject)
	}
	return false
}

func (c *Client) call(req *request) (*response, error) {
	// The RPC span covers the whole self-healing call (redials included)
	// and its context rides in the constant-size frame header. With no
	// tracer the header still goes out, carrying the zero context — frame
	// bytes are identical either way. The span is started before taking
	// c.mu so it parents under the calling goroutine's bound span, not
	// under whatever was bound when the lock became free.
	var span *otrace.Span
	if c.cfg.Trace != nil && req.Kind < numKinds {
		span = c.cfg.Trace.Start(rpcSpanNames[req.Kind])
		defer span.End()
	}
	req.Ctx = span.Context().Wire()
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil, ErrClosed
	}
	if c.lat != nil && req.Kind < numKinds {
		defer c.lat[req.Kind].ObserveSince(time.Now())
	}
	redials := 0
	resent := false
	var lastErr error
	for {
		if c.conn == nil {
			if c.addr == "" || redials >= c.cfg.Redials || c.cfg.Redials < 0 {
				break
			}
			backoff := c.cfg.RedialBackoff << redials
			if backoff > c.cfg.RedialMaxBackoff {
				backoff = c.cfg.RedialMaxBackoff
			}
			time.Sleep(backoff)
			redials++
			if err := c.redialLocked(); err != nil {
				lastErr = err
				continue
			}
			if c.sessioned() {
				if herr := c.handshakeLocked(); herr != nil {
					c.dropConnLocked()
					if errors.Is(herr, store.ErrUnauthorized) {
						// Re-presenting the same credentials cannot
						// succeed; fail the call instead of burning the
						// redial budget.
						return nil, fmt.Errorf("transport: session handshake: %w", herr)
					}
					lastErr = herr
					continue
				}
			}
		}
		if c.cfg.CallTimeout > 0 {
			_ = c.conn.SetDeadline(time.Now().Add(c.cfg.CallTimeout))
		}
		if err := c.enc.Encode(req); err != nil {
			c.dropConnLocked()
			lastErr = fmt.Errorf("transport: send: %w", err)
			resent = true
			continue
		}
		var resp response
		if err := c.dec.Decode(&resp); err != nil {
			c.dropConnLocked()
			if errors.Is(err, io.EOF) {
				lastErr = fmt.Errorf("transport: server closed connection: %w", err)
			} else {
				lastErr = fmt.Errorf("transport: receive: %w", err)
			}
			resent = true
			continue
		}
		if err := decodeErr(resp.Code, resp.Err); err != nil {
			if resent && reconcileResend(req.Kind, err) {
				return &resp, nil
			}
			return &resp, err
		}
		return &resp, nil
	}
	if lastErr == nil {
		lastErr = ErrClosed
	}
	return nil, fmt.Errorf("transport: connection lost (%d redials): %w: %w", redials, store.ErrUnavailable, lastErr)
}

// CreateArray implements store.Service.
func (c *Client) CreateArray(name string, n int) error {
	_, err := c.call(&request{Kind: kindCreateArray, Name: name, N: n})
	return err
}

// ArrayLen implements store.Service.
func (c *Client) ArrayLen(name string) (int, error) {
	resp, err := c.call(&request{Kind: kindArrayLen, Name: name})
	if err != nil {
		return 0, err
	}
	return resp.N, nil
}

// ReadCells implements store.Service.
func (c *Client) ReadCells(name string, idx []int64) ([][]byte, error) {
	resp, err := c.call(&request{Kind: kindReadCells, Name: name, Idx: idx})
	if err != nil {
		return nil, err
	}
	return resp.Cts, nil
}

// WriteCells implements store.Service.
func (c *Client) WriteCells(name string, idx []int64, cts [][]byte) error {
	_, err := c.call(&request{Kind: kindWriteCells, Name: name, Idx: idx, Cts: cts})
	return err
}

// CreateTree implements store.Service.
func (c *Client) CreateTree(name string, levels, slotsPerBucket int) error {
	_, err := c.call(&request{Kind: kindCreateTree, Name: name, Levels: levels, Slots: slotsPerBucket})
	return err
}

// ReadPath implements store.Service.
func (c *Client) ReadPath(name string, leaf uint32) ([][]byte, error) {
	resp, err := c.call(&request{Kind: kindReadPath, Name: name, Leaf: leaf})
	if err != nil {
		return nil, err
	}
	return resp.Cts, nil
}

// WritePath implements store.Service.
func (c *Client) WritePath(name string, leaf uint32, slots [][]byte) error {
	_, err := c.call(&request{Kind: kindWritePath, Name: name, Leaf: leaf, Cts: slots})
	return err
}

// WriteBuckets implements store.Service.
func (c *Client) WriteBuckets(name string, bucketStart int, slots [][]byte) error {
	_, err := c.call(&request{Kind: kindWriteBuckets, Name: name, N: bucketStart, Cts: slots})
	return err
}

// Delete implements store.Service.
func (c *Client) Delete(name string) error {
	_, err := c.call(&request{Kind: kindDelete, Name: name})
	return err
}

// Reveal implements store.Service.
func (c *Client) Reveal(tag string, value int64) error {
	_, err := c.call(&request{Kind: kindReveal, Name: tag, Value: value})
	return err
}

// Checkpoint implements store.Service. A resend after a lost
// acknowledgement just re-marks the same epoch, which is idempotent.
func (c *Client) Checkpoint(epoch int64) error {
	_, err := c.call(&request{Kind: kindCheckpoint, Value: epoch})
	return err
}

// Batch implements store.Batcher: the whole op list crosses the wire as one
// framed request and one framed response, so a batch of B cell operations
// costs one round trip instead of B. A resend after a broken connection
// re-applies the whole batch, which is safe because batches carry only cell
// reads and idempotent cell writes.
func (c *Client) Batch(ops []store.BatchOp) ([][][]byte, error) {
	resp, err := c.call(&request{Kind: kindBatch, Ops: ops})
	if err != nil {
		return nil, err
	}
	out := make([][][]byte, len(ops))
	flat := resp.Cts
	for i, op := range ops {
		if op.Write {
			continue
		}
		n := len(op.Idx)
		if n > len(flat) {
			return nil, fmt.Errorf("transport: batch response short: %d cells left, op wants %d", len(flat), n)
		}
		out[i], flat = flat[:n:n], flat[n:]
	}
	if len(flat) != 0 {
		return nil, fmt.Errorf("transport: batch response has %d extra cells", len(flat))
	}
	return out, nil
}

var _ store.Batcher = (*Client)(nil)

// statsRaw fetches server-side stats without adding this client's own
// reconnect count (the pool aggregates counts across all its clients).
func (c *Client) statsRaw() (store.Stats, error) {
	resp, err := c.call(&request{Kind: kindStats})
	if err != nil {
		return store.Stats{}, err
	}
	return resp.Stats, nil
}

// Stats implements store.Service, adding this client's reconnect count to
// the server-side report. With a shared registry counter the value is the
// config-wide total, so it replaces rather than accumulates — stacking
// would double-count what other sharers already reported.
func (c *Client) Stats() (store.Stats, error) {
	st, err := c.statsRaw()
	if err != nil {
		return store.Stats{}, err
	}
	if c.shared {
		st.Reconnects = c.reconnects.Value()
	} else {
		st.Reconnects += c.reconnects.Value()
	}
	return st, nil
}

// Replicate implements store.ReplicaConn: ship framed WAL records to a
// replica. seq is the shipper's stream position before this batch; the
// replica refuses (store.ErrIntegrity) unless it matches its watermark.
func (c *Client) Replicate(fence, seq int64, frames [][]byte) error {
	_, err := c.call(&request{Kind: kindReplicate, Value: fence, Seq: seq, Cts: frames, Token: c.cfg.Token})
	return err
}

// SyncSnapshot implements store.ReplicaConn: replace the replica's whole
// state with a snapshot and reposition its stream cursor at seq.
func (c *Client) SyncSnapshot(fence, seq int64, snap []byte) error {
	_, err := c.call(&request{Kind: kindSync, Value: fence, Seq: seq, Cts: [][]byte{snap}, Token: c.cfg.Token})
	return err
}

// FetchRepair implements store.RepairFetcher: fetch checksum-verified
// ciphertexts from a peer to heal local corruption. Token-gated like the
// other replication control RPCs.
func (c *Client) FetchRepair(fence int64, name string, isTree bool, idx []int64) ([][]byte, error) {
	treeFlag := 0
	if isTree {
		treeFlag = 1
	}
	resp, err := c.call(&request{Kind: kindRepair, Value: fence, Name: name, N: treeFlag, Idx: idx, Token: c.cfg.Token})
	if err != nil {
		return nil, err
	}
	return resp.Cts, nil
}

// Promote asks the server to adopt the given fencing epoch and the primary
// role; it returns the server's resulting fence. The failover layer calls it
// on the freshest reachable replica once no primary answers.
func (c *Client) Promote(fence int64) (int64, error) {
	resp, err := c.call(&request{Kind: kindPromote, Value: fence, Token: c.cfg.Token})
	if err != nil {
		return 0, err
	}
	return resp.Fence, nil
}

// TraceDump fetches the server's buffered span records, optionally
// filtered to one trace ID (lowercase hex; empty fetches everything). The
// RPC is token-gated like replication control: on a token-protected server
// the client's configured Token must match. fddiscover -trace-out uses it
// to merge server-side spans into the per-run flight-recorder artifact.
func (c *Client) TraceDump(traceFilter string) ([]otrace.Record, error) {
	resp, err := c.call(&request{Kind: kindTraceDump, Name: traceFilter, Token: c.cfg.Token})
	if err != nil {
		return nil, err
	}
	if len(resp.Cts) == 0 {
		return nil, nil
	}
	return otrace.UnmarshalRecords(resp.Cts[0])
}

var _ store.ReplicaConn = (*Client)(nil)
