package transport

import (
	"fmt"

	"github.com/oblivfd/oblivfd/internal/store"
)

// Pool is a store.Service backed by several TCP connections to the same
// server. Each call borrows one connection, so up to Size calls proceed in
// flight simultaneously — this is what lets the sorting protocol's parallel
// workers overlap network round trips (§IV-D's n/2 parallelism degree is
// only worth having if the transport admits concurrent requests; the
// paper's evaluation runs each thread on its own session).
type Pool struct {
	conns chan *Client
	all   []*Client
}

var _ store.Service = (*Pool)(nil)

// DialPool opens size connections to a transport server.
func DialPool(addr string, size int) (*Pool, error) {
	if size < 1 {
		size = 1
	}
	p := &Pool{conns: make(chan *Client, size)}
	for i := 0; i < size; i++ {
		c, err := Dial(addr)
		if err != nil {
			p.Close()
			return nil, fmt.Errorf("transport: pool connection %d: %w", i, err)
		}
		p.all = append(p.all, c)
		p.conns <- c
	}
	return p, nil
}

// Size returns the number of pooled connections.
func (p *Pool) Size() int { return len(p.all) }

// Close closes every pooled connection.
func (p *Pool) Close() error {
	var firstErr error
	for _, c := range p.all {
		if err := c.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// with borrows a connection for one call.
func (p *Pool) with(fn func(c *Client) error) error {
	c := <-p.conns
	defer func() { p.conns <- c }()
	return fn(c)
}

// CreateArray implements store.Service.
func (p *Pool) CreateArray(name string, n int) error {
	return p.with(func(c *Client) error { return c.CreateArray(name, n) })
}

// ArrayLen implements store.Service.
func (p *Pool) ArrayLen(name string) (n int, err error) {
	err = p.with(func(c *Client) error { n, err = c.ArrayLen(name); return err })
	return n, err
}

// ReadCells implements store.Service.
func (p *Pool) ReadCells(name string, idx []int64) (cts [][]byte, err error) {
	err = p.with(func(c *Client) error { cts, err = c.ReadCells(name, idx); return err })
	return cts, err
}

// WriteCells implements store.Service.
func (p *Pool) WriteCells(name string, idx []int64, cts [][]byte) error {
	return p.with(func(c *Client) error { return c.WriteCells(name, idx, cts) })
}

// CreateTree implements store.Service.
func (p *Pool) CreateTree(name string, levels, slotsPerBucket int) error {
	return p.with(func(c *Client) error { return c.CreateTree(name, levels, slotsPerBucket) })
}

// ReadPath implements store.Service.
func (p *Pool) ReadPath(name string, leaf uint32) (cts [][]byte, err error) {
	err = p.with(func(c *Client) error { cts, err = c.ReadPath(name, leaf); return err })
	return cts, err
}

// WritePath implements store.Service.
func (p *Pool) WritePath(name string, leaf uint32, slots [][]byte) error {
	return p.with(func(c *Client) error { return c.WritePath(name, leaf, slots) })
}

// WriteBuckets implements store.Service.
func (p *Pool) WriteBuckets(name string, bucketStart int, slots [][]byte) error {
	return p.with(func(c *Client) error { return c.WriteBuckets(name, bucketStart, slots) })
}

// Delete implements store.Service.
func (p *Pool) Delete(name string) error {
	return p.with(func(c *Client) error { return c.Delete(name) })
}

// Reveal implements store.Service.
func (p *Pool) Reveal(tag string, value int64) error {
	return p.with(func(c *Client) error { return c.Reveal(tag, value) })
}

// Stats implements store.Service.
func (p *Pool) Stats() (st store.Stats, err error) {
	err = p.with(func(c *Client) error { st, err = c.Stats(); return err })
	return st, err
}
