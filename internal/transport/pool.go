package transport

import (
	"fmt"
	"sync"

	"github.com/oblivfd/oblivfd/internal/otrace"
	"github.com/oblivfd/oblivfd/internal/store"
	"github.com/oblivfd/oblivfd/internal/telemetry"
)

// Pool is a store.Service backed by several TCP connections to the same
// server. Each call borrows one connection, so up to Size calls proceed in
// flight simultaneously — this is what lets the sorting protocol's parallel
// workers overlap network round trips (§IV-D's n/2 parallelism degree is
// only worth having if the transport admits concurrent requests; the
// paper's evaluation runs each thread on its own session).
//
// The pool self-heals: each pooled client re-dials on its own (see
// ClientConfig), and a client that comes back from a call with no live
// connection is replaced by a freshly dialed one, so one dead connection
// never poisons the other workers.
type Pool struct {
	addr string
	cfg  ClientConfig

	mu    sync.Mutex
	conns chan *Client
	all   map[*Client]struct{}

	// replacements is registry-backed when cfg.Metrics is set;
	// sharedReconnects is the config-wide redial counter all pooled
	// clients report into (nil when metrics are off).
	replacements     *telemetry.Counter
	sharedReconnects *telemetry.Counter
}

var _ store.Service = (*Pool)(nil)

// DialPool opens size connections to a transport server with the default
// self-healing configuration.
func DialPool(addr string, size int) (*Pool, error) {
	return DialPoolWith(addr, size, DefaultClientConfig())
}

// DialPoolWith opens size connections with an explicit configuration.
func DialPoolWith(addr string, size int, cfg ClientConfig) (*Pool, error) {
	if size < 1 {
		size = 1
	}
	p := &Pool{
		addr:  addr,
		cfg:   cfg.withDefaults(),
		conns: make(chan *Client, size),
		all:   make(map[*Client]struct{}, size),
	}
	if p.cfg.Metrics != nil {
		p.replacements = p.cfg.Metrics.Counter("oblivfd_pool_replacements_total")
		p.sharedReconnects = p.cfg.Metrics.Counter("oblivfd_client_reconnects_total")
	} else {
		p.replacements = telemetry.NewCounter()
	}
	for i := 0; i < size; i++ {
		c, err := DialWith(addr, p.cfg)
		if err != nil {
			p.Close()
			return nil, fmt.Errorf("transport: pool connection %d: %w", i, err)
		}
		p.all[c] = struct{}{}
		p.conns <- c
	}
	return p, nil
}

// Size returns the number of pooled connections.
func (p *Pool) Size() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.all)
}

// Reconnects returns the pool-wide reconnection count: re-dials performed
// by the pooled clients plus whole-connection replacements by the pool.
// With a Metrics registry the redial count is read once from the shared
// counter instead of summed per client — summing shared counters would
// multiply every redial by the pool size.
func (p *Pool) Reconnects() int64 {
	total := p.replacements.Value()
	if p.sharedReconnects != nil {
		return total + p.sharedReconnects.Value()
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	for c := range p.all {
		total += c.Reconnects()
	}
	return total
}

// Close closes every pooled connection.
func (p *Pool) Close() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	var firstErr error
	for c := range p.all {
		if err := c.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// with borrows a connection for one call. A client returned broken (its
// call exhausted the re-dial budget) is swapped for a fresh connection when
// the server is reachable again; otherwise it stays in the pool and the
// next borrower re-attempts the dial.
func (p *Pool) with(fn func(c *Client) error) error {
	c := <-p.conns
	defer func() { p.conns <- p.maybeReplace(c) }()
	return fn(c)
}

func (p *Pool) maybeReplace(c *Client) *Client {
	if !c.Broken() {
		return c
	}
	fresh, err := DialWith(p.addr, p.cfg)
	if err != nil {
		return c // server still down; keep the slot, retry on next borrow
	}
	p.mu.Lock()
	delete(p.all, c)
	p.all[fresh] = struct{}{}
	p.mu.Unlock()
	if p.sharedReconnects != nil {
		// The dead client's redials already persist in the shared counter;
		// folding them into replacements too would double-count.
		p.replacements.Inc()
	} else {
		p.replacements.Add(1 + c.Reconnects()) // keep the dead client's count
	}
	_ = c.Close()
	return fresh
}

// CreateArray implements store.Service.
func (p *Pool) CreateArray(name string, n int) error {
	return p.with(func(c *Client) error { return c.CreateArray(name, n) })
}

// ArrayLen implements store.Service.
func (p *Pool) ArrayLen(name string) (n int, err error) {
	err = p.with(func(c *Client) error { n, err = c.ArrayLen(name); return err })
	return n, err
}

// ReadCells implements store.Service.
func (p *Pool) ReadCells(name string, idx []int64) (cts [][]byte, err error) {
	err = p.with(func(c *Client) error { cts, err = c.ReadCells(name, idx); return err })
	return cts, err
}

// WriteCells implements store.Service.
func (p *Pool) WriteCells(name string, idx []int64, cts [][]byte) error {
	return p.with(func(c *Client) error { return c.WriteCells(name, idx, cts) })
}

// CreateTree implements store.Service.
func (p *Pool) CreateTree(name string, levels, slotsPerBucket int) error {
	return p.with(func(c *Client) error { return c.CreateTree(name, levels, slotsPerBucket) })
}

// ReadPath implements store.Service.
func (p *Pool) ReadPath(name string, leaf uint32) (cts [][]byte, err error) {
	err = p.with(func(c *Client) error { cts, err = c.ReadPath(name, leaf); return err })
	return cts, err
}

// WritePath implements store.Service.
func (p *Pool) WritePath(name string, leaf uint32, slots [][]byte) error {
	return p.with(func(c *Client) error { return c.WritePath(name, leaf, slots) })
}

// WriteBuckets implements store.Service.
func (p *Pool) WriteBuckets(name string, bucketStart int, slots [][]byte) error {
	return p.with(func(c *Client) error { return c.WriteBuckets(name, bucketStart, slots) })
}

// Delete implements store.Service.
func (p *Pool) Delete(name string) error {
	return p.with(func(c *Client) error { return c.Delete(name) })
}

// Reveal implements store.Service.
func (p *Pool) Reveal(tag string, value int64) error {
	return p.with(func(c *Client) error { return c.Reveal(tag, value) })
}

// Checkpoint implements store.Service.
func (p *Pool) Checkpoint(epoch int64) error {
	return p.with(func(c *Client) error { return c.Checkpoint(epoch) })
}

// Batch implements store.Batcher: the whole batch is sent over one borrowed
// connection as a single framed request, so it costs one round trip while
// other workers' calls proceed on the remaining connections.
func (p *Pool) Batch(ops []store.BatchOp) (res [][][]byte, err error) {
	err = p.with(func(c *Client) error { res, err = c.Batch(ops); return err })
	return res, err
}

var _ store.Batcher = (*Pool)(nil)

// TraceDump fetches the server's buffered span records over one borrowed
// connection (see Client.TraceDump).
func (p *Pool) TraceDump(traceFilter string) (recs []otrace.Record, err error) {
	err = p.with(func(c *Client) error { recs, err = c.TraceDump(traceFilter); return err })
	return recs, err
}

// Stats implements store.Service, adding the pool-wide reconnection count
// to the server-side report.
func (p *Pool) Stats() (st store.Stats, err error) {
	err = p.with(func(c *Client) error { st, err = c.statsRaw(); return err })
	if err != nil {
		return store.Stats{}, err
	}
	st.Reconnects += p.Reconnects()
	return st, nil
}
