package enclave

import (
	"fmt"
	"testing"

	"github.com/oblivfd/oblivfd/internal/relation"
)

func randomRel(m, n, cardinality int, seed int64) *relation.Relation {
	names := make([]string, m)
	for i := range names {
		names[i] = string(rune('A' + i))
	}
	rel := relation.New(relation.MustNewSchema(names...))
	state := uint64(seed)*6364136223846793005 + 1442695040888963407
	next := func() uint64 {
		state = state*6364136223846793005 + 1442695040888963407
		return state >> 33
	}
	for i := 0; i < n; i++ {
		row := make(relation.Row, m)
		for j := range row {
			row[j] = fmt.Sprint(int(next()) % cardinality)
		}
		if err := rel.Append(row); err != nil {
			panic(err)
		}
	}
	return rel
}

func TestCardinalitiesMatchOracle(t *testing.T) {
	for _, workers := range []int{1, 4} {
		rel := randomRel(4, 50, 3, 7)
		e := NewSortEngine(rel, workers)
		for a := 0; a < 4; a++ {
			got, err := e.CardinalitySingle(a)
			if err != nil {
				t.Fatalf("workers=%d CardinalitySingle(%d): %v", workers, a, err)
			}
			want := relation.PartitionOf(rel, relation.SingleAttr(a)).Classes
			if got != want {
				t.Errorf("workers=%d |π_%d| = %d, want %d", workers, a, got, want)
			}
		}
		for a := 0; a < 4; a++ {
			for b := a + 1; b < 4; b++ {
				got, err := e.CardinalityUnion(relation.SingleAttr(a), relation.SingleAttr(b))
				if err != nil {
					t.Fatal(err)
				}
				want := relation.PartitionOf(rel, relation.NewAttrSet(a, b)).Classes
				if got != want {
					t.Errorf("workers=%d |π_{%d,%d}| = %d, want %d", workers, a, b, got, want)
				}
			}
		}
	}
}

func TestTripleUnion(t *testing.T) {
	rel := randomRel(3, 40, 2, 3)
	e := NewSortEngine(rel, 2)
	for a := 0; a < 3; a++ {
		if _, err := e.CardinalitySingle(a); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := e.CardinalityUnion(relation.SingleAttr(0), relation.SingleAttr(1)); err != nil {
		t.Fatal(err)
	}
	if _, err := e.CardinalityUnion(relation.SingleAttr(1), relation.SingleAttr(2)); err != nil {
		t.Fatal(err)
	}
	got, err := e.CardinalityUnion(relation.NewAttrSet(0, 1), relation.NewAttrSet(1, 2))
	if err != nil {
		t.Fatal(err)
	}
	want := relation.PartitionOf(rel, relation.NewAttrSet(0, 1, 2)).Classes
	if got != want {
		t.Errorf("|π_{0,1,2}| = %d, want %d", got, want)
	}
}

func TestEngineContract(t *testing.T) {
	rel := randomRel(2, 10, 2, 1)
	e := NewSortEngine(rel, 1)
	if e.NumRows() != 10 {
		t.Errorf("NumRows = %d", e.NumRows())
	}
	if _, ok := e.Cardinality(relation.SingleAttr(0)); ok {
		t.Error("Cardinality before materialization")
	}
	if _, err := e.CardinalityUnion(relation.SingleAttr(0), relation.SingleAttr(1)); err == nil {
		t.Error("union before materialization accepted")
	}
	if _, err := e.CardinalityUnion(relation.SingleAttr(0), relation.SingleAttr(0)); err == nil {
		t.Error("identical covers accepted")
	}
	c, err := e.CardinalitySingle(0)
	if err != nil {
		t.Fatal(err)
	}
	if got, ok := e.Cardinality(relation.SingleAttr(0)); !ok || got != c {
		t.Error("cache miss after materialization")
	}
	if e.SecureMemoryBytes() <= 0 {
		t.Error("SecureMemoryBytes not positive")
	}
	if err := e.Release(relation.SingleAttr(0)); err != nil {
		t.Fatal(err)
	}
	if err := e.Release(relation.SingleAttr(0)); err == nil {
		t.Error("double release accepted")
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestEnclaveIsolatedFromCallerMutation(t *testing.T) {
	rel := randomRel(2, 10, 2, 2)
	e := NewSortEngine(rel, 1)
	before, err := e.CardinalitySingle(0)
	if err != nil {
		t.Fatal(err)
	}
	rel.Row(0)[0] = "mutated-to-something-unique"
	if err := e.Release(relation.SingleAttr(0)); err != nil {
		t.Fatal(err)
	}
	after, err := e.CardinalitySingle(0)
	if err != nil {
		t.Fatal(err)
	}
	if before != after {
		t.Error("engine shares storage with the caller's relation")
	}
}

func TestHashValueDistinguishesValues(t *testing.T) {
	// The FNV mapping must separate values that concatenate equally.
	if hashValue("ab") == hashValue("a") {
		t.Error("hash collides on prefix")
	}
	if hashValue("") == hashValue("\x00") {
		t.Error("hash collides on empty vs NUL")
	}
	if hashValue("x") != hashValue("x") {
		t.Error("hash not deterministic")
	}
}
