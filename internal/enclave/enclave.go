// Package enclave simulates deploying the sorting protocol inside a
// server-side secure enclave (the paper's SGX experiment, §VII-D, Fig. 6b).
//
// Substitution note (DESIGN.md §2): we do not have SGX hardware, so the
// enclave is modeled as client logic co-located with the data: plaintext
// records live in "secure memory" the untrusted server cannot read, which
// removes exactly the costs the paper's SGX deployment removes — the
// client↔server transfer of every compare-exchange and the re-encryption of
// every value written back. The algorithm itself is unchanged: the same
// bitonic network (obsort.Stages), the same labeling pass, the same
// Property 1 key construction, so the access pattern inside the enclave is
// still data-independent (SGX enclaves leak memory access patterns to the
// host, so obliviousness still matters inside the enclave).
package enclave

import (
	"encoding/binary"
	"fmt"
	"sort"
	"sync"

	"github.com/oblivfd/oblivfd/internal/obsort"
	"github.com/oblivfd/oblivfd/internal/relation"
)

// rec is one in-enclave record: (key-or-label, id), mirroring the sorting
// protocol's 16-byte records.
type rec struct {
	key uint64
	id  uint64
	pad bool
}

// SortEngine runs Algorithm 3 entirely in enclave memory. It implements
// core.Engine (structurally; the core package is not imported to keep the
// dependency direction substrate → core).
type SortEngine struct {
	rel     *relation.Relation
	workers int
	sets    map[relation.AttrSet]*state
}

type state struct {
	labels []uint64 // label per r[ID]
	card   uint64
}

// NewSortEngine loads the (decrypted) relation into enclave memory. In a
// real deployment the enclave would decrypt the uploaded ciphertexts with a
// provisioned key; the simulation starts from plaintext directly, which
// costs O(n·m) either way.
func NewSortEngine(rel *relation.Relation, workers int) *SortEngine {
	if workers < 1 {
		workers = 1
	}
	return &SortEngine{rel: rel.Clone(), workers: workers, sets: make(map[relation.AttrSet]*state)}
}

// NumRows implements core.Engine.
func (e *SortEngine) NumRows() int { return e.rel.NumRows() }

// materialize runs Algorithm 3's three phases on the prepared records.
func (e *SortEngine) materialize(records []rec) (*state, error) {
	n := len(records)
	p := 1
	for p < n {
		p <<= 1
	}
	arr := make([]rec, p)
	copy(arr, records)
	for i := n; i < p; i++ {
		arr[i] = rec{pad: true}
	}

	// Phase 1: bitonic sort by key (pads last).
	if err := e.bitonic(arr, func(a, b rec) bool { return a.key < b.key }); err != nil {
		return nil, err
	}
	// Phase 2: dense labeling pass.
	var card uint64
	tmp := arr[0].key
	for i := 0; i < n; i++ {
		if arr[i].key != tmp {
			card++
			tmp = arr[i].key
		}
		arr[i].key = card
	}
	// Phase 3: bitonic sort back by id.
	if err := e.bitonic(arr, func(a, b rec) bool { return a.id < b.id }); err != nil {
		return nil, err
	}
	st := &state{labels: make([]uint64, n), card: card + 1}
	for i := 0; i < n; i++ {
		st.labels[i] = arr[i].key
	}
	return st, nil
}

// bitonic replays the oblivious network over the in-memory array, with the
// engine's parallelism degree (each stage's comparators are disjoint).
func (e *SortEngine) bitonic(arr []rec, less func(a, b rec) bool) error {
	cmpEx := func(lo, hi int64) {
		a, b := arr[lo], arr[hi]
		swap := false
		switch {
		case a.pad && !b.pad:
			swap = true
		case !a.pad && !b.pad:
			swap = less(b, a)
		}
		if swap {
			arr[lo], arr[hi] = b, a
		}
	}
	return obsort.Stages(len(arr), func(pairs [][2]int64) error {
		if e.workers == 1 || len(pairs) < 2*e.workers {
			for _, pr := range pairs {
				cmpEx(pr[0], pr[1])
			}
			return nil
		}
		var wg sync.WaitGroup
		chunk := (len(pairs) + e.workers - 1) / e.workers
		for w := 0; w < e.workers; w++ {
			lo := w * chunk
			if lo >= len(pairs) {
				break
			}
			hi := lo + chunk
			if hi > len(pairs) {
				hi = len(pairs)
			}
			wg.Add(1)
			go func(part [][2]int64) {
				defer wg.Done()
				for _, pr := range part {
					cmpEx(pr[0], pr[1])
				}
			}(pairs[lo:hi])
		}
		wg.Wait()
		return nil
	})
}

// CardinalitySingle implements core.Engine.
func (e *SortEngine) CardinalitySingle(attr int) (int, error) {
	x := relation.SingleAttr(attr)
	if st, ok := e.sets[x]; ok {
		return int(st.card), nil
	}
	n := e.rel.NumRows()
	if n == 0 {
		return 0, fmt.Errorf("enclave: empty relation")
	}
	records := make([]rec, n)
	for i := 0; i < n; i++ {
		records[i] = rec{key: hashValue(e.rel.Value(i, attr)), id: uint64(i)}
	}
	st, err := e.materialize(records)
	if err != nil {
		return 0, err
	}
	e.sets[x] = st
	return int(st.card), nil
}

// CardinalityUnion implements core.Engine.
func (e *SortEngine) CardinalityUnion(x1, x2 relation.AttrSet) (int, error) {
	if x1.IsEmpty() || x2.IsEmpty() || x1 == x2 {
		return 0, fmt.Errorf("enclave: invalid union cover (%v, %v)", x1, x2)
	}
	x := x1.Union(x2)
	if x == x1 || x == x2 {
		return 0, fmt.Errorf("enclave: %v and %v are not proper subsets of %v", x1, x2, x)
	}
	if st, ok := e.sets[x]; ok {
		return int(st.card), nil
	}
	st1, ok := e.sets[x1]
	if !ok {
		return 0, fmt.Errorf("enclave: %v not materialized", x1)
	}
	st2, ok := e.sets[x2]
	if !ok {
		return 0, fmt.Errorf("enclave: %v not materialized", x2)
	}
	n := e.rel.NumRows()
	records := make([]rec, n)
	for i := 0; i < n; i++ {
		records[i] = rec{key: st1.labels[i]<<32 | st2.labels[i], id: uint64(i)}
	}
	st, err := e.materialize(records)
	if err != nil {
		return 0, err
	}
	e.sets[x] = st
	return int(st.card), nil
}

// Cardinality implements core.Engine.
func (e *SortEngine) Cardinality(x relation.AttrSet) (int, bool) {
	st, ok := e.sets[x]
	if !ok {
		return 0, false
	}
	return int(st.card), true
}

// Release implements core.Engine.
func (e *SortEngine) Release(x relation.AttrSet) error {
	if _, ok := e.sets[x]; !ok {
		return fmt.Errorf("enclave: %v not materialized", x)
	}
	delete(e.sets, x)
	return nil
}

// ClientMemoryBytes implements core.Engine. The untrusted client outside
// the enclave holds nothing; secure memory usage is reported instead.
func (e *SortEngine) ClientMemoryBytes() int { return 0 }

// SecureMemoryBytes estimates enclave-resident memory: the relation plus
// materialized label arrays.
func (e *SortEngine) SecureMemoryBytes() int {
	total := e.rel.ByteSize()
	for _, st := range e.sets {
		total += 8 * len(st.labels)
	}
	return total
}

// Close implements core.Engine.
func (e *SortEngine) Close() error {
	e.sets = make(map[relation.AttrSet]*state)
	return nil
}

// MaterializedSets returns the materialized attribute sets in deterministic
// order (diagnostics and tests).
func (e *SortEngine) MaterializedSets() []relation.AttrSet {
	out := make([]relation.AttrSet, 0, len(e.sets))
	for x := range e.sets {
		out = append(out, x)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// hashValue maps a cell value to a 64-bit key with FNV-1a. Inside the
// enclave no PRF key is needed; any injective-w.h.p. fixed-width mapping
// preserves partitions.
func hashValue(v string) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for i := 0; i < len(v); i++ {
		h ^= uint64(v[i])
		h *= prime
	}
	var lenTag [8]byte
	binary.BigEndian.PutUint64(lenTag[:], uint64(len(v)))
	for _, b := range lenTag {
		h ^= uint64(b)
		h *= prime
	}
	return h
}
