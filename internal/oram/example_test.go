package oram_test

import (
	"fmt"
	"log"

	"github.com/oblivfd/oblivfd/internal/crypto"
	"github.com/oblivfd/oblivfd/internal/oram"
	"github.com/oblivfd/oblivfd/internal/store"
)

// A minimal oblivious key-value store on an untrusted server.
func Example() {
	server := store.NewServer()
	cipher := crypto.MustNewCipher(crypto.MustNewKey())

	kv, err := oram.Setup(server, cipher, "demo", oram.Config{
		Capacity:   128,
		KeyWidth:   16,
		ValueWidth: 8,
		Seed:       1, // deterministic leaves for the example only
	})
	if err != nil {
		log.Fatal(err)
	}

	if err := kv.Write("alice", []byte("00000042")); err != nil {
		log.Fatal(err)
	}
	v, found, err := kv.Read("alice")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(found, string(v))

	// Misses are indistinguishable from hits on the server.
	_, found, _ = kv.Read("mallory")
	fmt.Println(found)
	// Output:
	// true 00000042
	// false
}
