// Package oram implements the non-recursive PathORAM of Stefanov et al.
// (JACM 2018) with the key-value interface of the paper's Definition 4:
// Setup / Read / Write (plus Remove, needed by the dynamic protocol's
// Algorithm 5). The client keeps the position map and stash; the server
// stores an encrypted bucket tree via store.Service.
//
// Parameters follow the paper's evaluation (§VII-A): Z = 4 blocks per
// bucket and a stash capped at 7·log₂(n) blocks.
//
// Obliviousness: every operation — Read, Write, and Remove alike, hit or
// miss — performs exactly one ReadPath and one WritePath on a uniformly
// random leaf, re-encrypting every slot it writes. The server cannot
// distinguish the three operations (Definition 4 requires Read and Write to
// be mutually indistinguishable).
//
// Setup populates the entire tree with individually encrypted dummy blocks
// (one linear WriteBuckets pass), exactly as the textbook construction
// requires: every slot the server ever holds is a same-sized semantically
// secure ciphertext, so path-read sizes are constant and carry nothing.
package oram

import (
	"crypto/rand"
	"encoding/binary"
	"errors"
	"fmt"
	"math/bits"
	mrand "math/rand"

	"github.com/oblivfd/oblivfd/internal/crypto"
	"github.com/oblivfd/oblivfd/internal/store"
	"github.com/oblivfd/oblivfd/internal/telemetry"
)

// DefaultZ is the paper's bucket capacity.
const DefaultZ = 4

// DefaultStashFactor is the paper's stash bound multiplier: the stash may
// hold at most DefaultStashFactor·log₂(capacity) blocks.
const DefaultStashFactor = 7

// ErrStashOverflow is returned when the stash exceeds its bound. With Z = 4
// this happens with negligible probability; seeing it indicates a bug or an
// adversarial workload outside the model.
var ErrStashOverflow = errors.New("oram: stash overflow")

// ErrValueWidth is returned when a written value does not match the ORAM's
// fixed value width.
var ErrValueWidth = errors.New("oram: value width mismatch")

// ErrKeyWidth is returned when a key exceeds the ORAM's fixed key width.
var ErrKeyWidth = errors.New("oram: key too long")

// verWidth is the size of the freshness version embedded in every block
// plaintext, between the real/dummy flag and the padded key. Dummies carry a
// zero version, so real and dummy plaintexts stay the same length.
const verWidth = 8

// treeAD is the associated-data slot for every ciphertext in a tree: blocks
// authenticate only within the tree they were written to.
func treeAD(name string) []byte { return []byte("oram:" + name) }

// Config parameterizes Setup.
type Config struct {
	// Capacity is the maximum number of live key-value pairs (the paper's
	// n). The tree is sized to the next power of two.
	Capacity int
	// KeyWidth is the maximum key length in bytes. All blocks are padded
	// to a common size derived from KeyWidth and ValueWidth.
	KeyWidth int
	// ValueWidth is the exact value length in bytes; every stored value
	// must have this length so ciphertext sizes are data-independent.
	ValueWidth int
	// Z is the bucket capacity; 0 means DefaultZ.
	Z int
	// StashFactor bounds the stash to StashFactor·log₂(capacity); 0 means
	// DefaultStashFactor.
	StashFactor int
	// Seed seeds the leaf-choice RNG for reproducible tests; 0 draws a
	// random seed from crypto/rand.
	Seed int64
	// Metrics, when set, counts path reads/writes and accesses and tracks
	// the stash size across all ORAMs sharing the registry. Everything
	// observed (access counts, path sizes, stash occupancy) is part of the
	// construction's public behaviour, not the data (DESIGN.md §9).
	Metrics *telemetry.Registry
}

// ORAM is a client-side handle to one oblivious key-value store. It is not
// safe for concurrent use: the protocols access each ORAM sequentially
// (Algorithms 1–5 are sequential loops).
type ORAM struct {
	svc        store.Service
	cipher     *crypto.Cipher
	name       string
	capacity   int
	z          int
	levels     int // tree levels including root and leaf level
	numLeaves  int
	keyWidth   int
	valueWidth int
	blockSize  int

	// Client-held state: position map, stash, and freshness tags (§VII-C
	// discusses their O(n) memory cost). vers[k] is the version stamped
	// into the tree copy of block k when it was last evicted; a decrypted
	// block whose version differs is a replayed or rolled-back copy
	// (DESIGN.md §10).
	posMap map[string]uint32
	stash  map[string][]byte
	vers   map[string]uint64

	// ad binds every ciphertext of this tree to the tree's name, so blocks
	// cannot be transplanted between ORAMs sharing a key.
	ad []byte

	stashLimit int
	maxStash   int
	accesses   int64
	rng        *mrand.Rand

	// Scratch buffers reused across accesses so the steady-state path
	// read/write loop allocates only what must escape: ciphertexts headed
	// for the server (the in-process server retains the exact slices it is
	// handed, so those must stay fresh Seal outputs) and values entering
	// the stash. Lazily initialized so checkpoint-restored handles get them
	// too. Their reuse is another reason an ORAM handle is not safe for
	// concurrent use.
	ptBuf    []byte   // decryptBlock plaintext scratch (via OpenTo)
	blockPt  []byte   // encryptBlock/encryptDummy plaintext staging
	evictBuf [][]byte // evict's outgoing slots; every entry overwritten per call

	// Telemetry handles, nil when disabled. stashGauge is shared across
	// every ORAM on the registry and updated by delta, so it reads as the
	// total stashed blocks across all live ORAMs; prevStash tracks this
	// handle's last contribution.
	reg        *telemetry.Registry
	pathReads  *telemetry.Counter
	pathWrites *telemetry.Counter
	accessCtr  *telemetry.Counter
	stashGauge *telemetry.Gauge
	prevStash  int
}

// SetTelemetry attaches (or, with nil, detaches) a telemetry registry.
// core.Resume uses it to re-instrument handles rebuilt from checkpoints.
func (o *ORAM) SetTelemetry(reg *telemetry.Registry) {
	o.reg = reg
	o.pathReads = reg.Counter("oblivfd_oram_path_reads_total")
	o.pathWrites = reg.Counter("oblivfd_oram_path_writes_total")
	o.accessCtr = reg.Counter("oblivfd_oram_accesses_total")
	o.stashGauge = reg.Gauge("oblivfd_oram_stash_blocks")
	o.prevStash = 0
}

// Setup creates an empty ORAM named name on the server (Definition 4's
// Setup: client state out, encrypted memory to S).
func Setup(svc store.Service, cipher *crypto.Cipher, name string, cfg Config) (*ORAM, error) {
	if cfg.Capacity < 1 {
		return nil, fmt.Errorf("oram: capacity %d < 1", cfg.Capacity)
	}
	if cfg.KeyWidth < 1 || cfg.ValueWidth < 1 {
		return nil, fmt.Errorf("oram: key/value widths must be positive (got %d, %d)", cfg.KeyWidth, cfg.ValueWidth)
	}
	z := cfg.Z
	if z == 0 {
		z = DefaultZ
	}
	sf := cfg.StashFactor
	if sf == 0 {
		sf = DefaultStashFactor
	}
	numLeaves := nextPow2(cfg.Capacity)
	if numLeaves < 2 {
		numLeaves = 2
	}
	levels := bits.TrailingZeros(uint(numLeaves)) + 1
	o := &ORAM{
		svc:        svc,
		cipher:     cipher,
		name:       name,
		capacity:   cfg.Capacity,
		z:          z,
		levels:     levels,
		numLeaves:  numLeaves,
		keyWidth:   cfg.KeyWidth,
		valueWidth: cfg.ValueWidth,
		blockSize:  1 + verWidth + crypto.PadWidth(cfg.KeyWidth) + cfg.ValueWidth,
		posMap:     make(map[string]uint32),
		stash:      make(map[string][]byte),
		vers:       make(map[string]uint64),
		ad:         treeAD(name),
		stashLimit: sf * ceilLog2(cfg.Capacity),
		rng:        newRNG(cfg.Seed),
	}
	if o.stashLimit < sf {
		o.stashLimit = sf // capacity 1 still gets a usable stash
	}
	if cfg.Metrics != nil {
		o.SetTelemetry(cfg.Metrics)
	}
	if err := svc.CreateTree(name, levels, z); err != nil {
		return nil, fmt.Errorf("oram: creating tree: %w", err)
	}
	if err := o.initTree(); err != nil {
		return nil, err
	}
	return o, nil
}

// initTree fills every bucket with individually encrypted dummy blocks, as
// in the textbook construction, so the initial state is indistinguishable
// from any later state and path-read sizes never depend on access history.
func (o *ORAM) initTree() error {
	const bucketsPerBatch = 256
	totalBuckets := (1 << o.levels) - 1
	for start := 0; start < totalBuckets; start += bucketsPerBatch {
		count := bucketsPerBatch
		if start+count > totalBuckets {
			count = totalBuckets - start
		}
		slots := make([][]byte, count*o.z)
		for i := range slots {
			ct, err := o.encryptDummy()
			if err != nil {
				return err
			}
			slots[i] = ct
		}
		if err := o.svc.WriteBuckets(o.name, start, slots); err != nil {
			return fmt.Errorf("oram: initializing tree: %w", err)
		}
	}
	return nil
}

func newRNG(seed int64) *mrand.Rand {
	if seed == 0 {
		var b [8]byte
		if _, err := rand.Read(b[:]); err != nil {
			panic(fmt.Sprintf("oram: seeding rng: %v", err))
		}
		seed = int64(binary.BigEndian.Uint64(b[:]) >> 1)
		if seed == 0 {
			seed = 1
		}
	}
	return mrand.New(mrand.NewSource(seed))
}

func nextPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

func ceilLog2(n int) int {
	if n <= 1 {
		return 1
	}
	return bits.Len(uint(n - 1))
}

// Name returns the server-side object name.
func (o *ORAM) Name() string { return o.name }

// Len returns the number of live keys.
func (o *ORAM) Len() int { return len(o.posMap) }

// Capacity returns the configured capacity.
func (o *ORAM) Capacity() int { return o.capacity }

// ValueWidth returns the fixed value width.
func (o *ORAM) ValueWidth() int { return o.valueWidth }

// StashSize returns the current number of stashed blocks.
func (o *ORAM) StashSize() int { return len(o.stash) }

// MaxStashSize returns the stash high-water mark since Setup.
func (o *ORAM) MaxStashSize() int { return o.maxStash }

// StashLimit returns the configured stash bound.
func (o *ORAM) StashLimit() int { return o.stashLimit }

// Accesses returns how many oblivious accesses (path read + write pairs)
// have been performed. Protocol tests use it to verify fixed access counts.
func (o *ORAM) Accesses() int64 { return o.accesses }

// ClientMemoryBytes estimates the client-held state size: position map
// entries plus stashed blocks. This backs the client-memory curve of Fig. 5.
func (o *ORAM) ClientMemoryBytes() int {
	total := 0
	for k := range o.posMap {
		total += len(k) + 4
	}
	for k := range o.vers {
		total += len(k) + verWidth // freshness tags are client state too
	}
	for k, v := range o.stash {
		total += len(k) + len(v)
	}
	return total
}

// Read retrieves the value stored under key, or found=false if absent
// (Definition 4 returns ⊥). The access pattern is identical for hits and
// misses.
func (o *ORAM) Read(key string) (value []byte, found bool, err error) {
	return o.access(key, nil, opRead)
}

// Write stores (key, value), inserting or overwriting.
func (o *ORAM) Write(key string, value []byte) error {
	if len(value) != o.valueWidth {
		return fmt.Errorf("%w: got %d bytes, want %d", ErrValueWidth, len(value), o.valueWidth)
	}
	_, _, err := o.access(key, value, opWrite)
	return err
}

// Remove deletes key if present. Its access pattern is indistinguishable
// from Read and Write.
func (o *ORAM) Remove(key string) error {
	_, _, err := o.access(key, nil, opRemove)
	return err
}

// Destroy deletes the server-side tree. The handle must not be used after.
func (o *ORAM) Destroy() error {
	if o.stashGauge != nil {
		// Withdraw this handle's contribution from the shared gauge.
		o.stashGauge.Add(-int64(o.prevStash))
		o.prevStash = 0
	}
	return o.svc.Delete(o.name)
}

type opKind uint8

const (
	opRead opKind = iota
	opWrite
	opRemove
)

// access is the single PathORAM access routine shared by Read, Write, and
// Remove so their server-visible behaviour is identical by construction.
func (o *ORAM) access(key string, newValue []byte, kind opKind) ([]byte, bool, error) {
	if len(key) > o.keyWidth {
		return nil, false, fmt.Errorf("%w: %d bytes, max %d", ErrKeyWidth, len(key), o.keyWidth)
	}
	o.accesses++
	o.accessCtr.Inc()
	sp := o.reg.StartSpan("oram/access")
	defer sp.End()

	leaf, known := o.posMap[key]
	if !known {
		// Dummy path: uniformly random, like any remapped leaf.
		leaf = uint32(o.rng.Intn(o.numLeaves))
	}

	// 1. Read the path and move its real blocks into the stash.
	slots, err := o.svc.ReadPath(o.name, leaf)
	if err != nil {
		return nil, false, fmt.Errorf("oram: %w", err)
	}
	o.pathReads.Inc()
	for i, ct := range slots {
		if len(ct) == 0 {
			// Setup leaves no empty slots; an empty one means the server
			// dropped a ciphertext.
			return nil, false, o.integrityErr(fmt.Sprintf("empty slot %d on path to leaf %d", i, leaf), nil)
		}
		blk, err := o.decryptBlock(ct)
		if err != nil {
			return nil, false, err
		}
		if blk == nil {
			continue // encrypted dummy
		}
		// Honest invariant: each live key has exactly one copy, in the
		// stash or in one tree bucket on its assigned path. A tree block
		// violating that is a replayed, duplicated, or rolled-back copy.
		if _, inStash := o.stash[blk.key]; inStash {
			return nil, false, o.integrityErr(fmt.Sprintf("duplicate copy of block %q (already stashed)", blk.key), nil)
		}
		if _, live := o.posMap[blk.key]; !live {
			return nil, false, o.integrityErr(fmt.Sprintf("replayed block %q (key not live)", blk.key), nil)
		}
		if want := o.vers[blk.key]; blk.ver != want {
			return nil, false, o.integrityErr(fmt.Sprintf("stale block %q: version %d, want %d", blk.key, blk.ver, want), nil)
		}
		o.stash[blk.key] = blk.value
	}
	// Freshness of the path as a whole: a key the position map assigns to
	// this path must now be in the stash; otherwise the server suppressed
	// the real block (e.g. substituted an authenticated dummy from another
	// slot of the same tree).
	if known {
		if _, inStash := o.stash[key]; !inStash {
			return nil, false, o.integrityErr(fmt.Sprintf("block %q missing from its assigned path (leaf %d)", key, leaf), nil)
		}
	}

	// 2. Serve the operation from the stash. Values are copied on both
	// store and return so callers can never alias stash-internal storage.
	value, found := o.stash[key]
	switch kind {
	case opWrite:
		stored := append([]byte(nil), newValue...)
		o.stash[key] = stored
		o.posMap[key] = uint32(o.rng.Intn(o.numLeaves))
		found = true
		value = stored
	case opRemove:
		delete(o.stash, key)
		delete(o.posMap, key)
		delete(o.vers, key)
	case opRead:
		if found {
			// Standard PathORAM remap on every touch.
			o.posMap[key] = uint32(o.rng.Intn(o.numLeaves))
		}
	}

	if len(o.stash) > o.maxStash {
		o.maxStash = len(o.stash)
	}

	// 3. Evict: greedily push stash blocks as deep as possible along the
	// path just read, then write every slot back re-encrypted.
	if err := o.evict(leaf); err != nil {
		return nil, false, err
	}
	if o.stashGauge != nil {
		o.stashGauge.Add(int64(len(o.stash) - o.prevStash))
		o.prevStash = len(o.stash)
	}

	if len(o.stash) > o.stashLimit {
		return nil, false, fmt.Errorf("%w: %d blocks > limit %d", ErrStashOverflow, len(o.stash), o.stashLimit)
	}
	if kind == opRead && !found {
		return nil, false, nil
	}
	return append([]byte(nil), value...), found, nil
}

// evict builds fresh bucket contents for the path to leaf and writes them
// back. Buckets are filled leaf-to-root with eligible stash blocks.
func (o *ORAM) evict(leaf uint32) error {
	if o.evictBuf == nil {
		o.evictBuf = make([][]byte, o.levels*o.z)
	}
	// Safe to reuse: every slot is overwritten below (real blocks then dummy
	// fill), and the server keeps only the fresh per-slot ciphertexts, never
	// the outer slice.
	out := o.evictBuf
	leafLevel := o.levels - 1
	for l := leafLevel; l >= 0; l-- {
		placed := 0
		for k, v := range o.stash {
			if placed == o.z {
				break
			}
			blockLeaf := o.posMap[k]
			// Eligible iff the block's assigned path shares this
			// bucket: equal leaf prefixes down to level l.
			if (blockLeaf >> uint(leafLevel-l)) != (leaf >> uint(leafLevel-l)) {
				continue
			}
			// Stamp a fresh version into the outgoing copy; the client-held
			// tag is what later reads are checked against.
			o.vers[k]++
			ct, err := o.encryptBlock(&block{key: k, value: v, ver: o.vers[k]})
			if err != nil {
				return err
			}
			out[l*o.z+placed] = ct
			placed++
			delete(o.stash, k)
		}
		for ; placed < o.z; placed++ {
			ct, err := o.encryptDummy()
			if err != nil {
				return err
			}
			out[l*o.z+placed] = ct
		}
	}
	if err := o.svc.WritePath(o.name, leaf, out); err != nil {
		return fmt.Errorf("oram: %w", err)
	}
	o.pathWrites.Inc()
	return nil
}

// block is a decrypted real block. ver is the freshness tag checked against
// the client-held version map.
type block struct {
	key   string
	value []byte
	ver   uint64
}

// integrityErr wraps a verification failure in store.ErrIntegrity so the
// retry layer classifies it fatal and discovery aborts with the location.
func (o *ORAM) integrityErr(what string, cause error) error {
	if cause != nil {
		return fmt.Errorf("oram %q: %s: %v: %w", o.name, what, cause, store.ErrIntegrity)
	}
	return fmt.Errorf("oram %q: %s: %w", o.name, what, store.ErrIntegrity)
}

// encryptBlock serializes and encrypts a real block to the fixed block size:
// flag(1) ∥ version(8) ∥ padded key ∥ value, sealed with the tree's
// associated data.
func (o *ORAM) encryptBlock(b *block) ([]byte, error) {
	pt := o.stagePlaintext()
	pt[0] = 1
	binary.BigEndian.PutUint64(pt[1:1+verWidth], b.ver)
	padWidth := crypto.PadWidth(o.keyWidth)
	if err := crypto.PadInto(pt[1+verWidth:1+verWidth+padWidth], b.key, o.keyWidth); err != nil {
		return nil, fmt.Errorf("oram: padding key: %w", err)
	}
	copy(pt[1+verWidth+padWidth:], b.value)
	return o.cipher.Seal(pt, o.ad)
}

// encryptDummy encrypts a dummy block of the same size as a real one.
func (o *ORAM) encryptDummy() ([]byte, error) {
	return o.cipher.Seal(o.stagePlaintext(), o.ad)
}

// stagePlaintext returns the zeroed staging buffer for one block plaintext.
// Seal copies out of it, so handing the same buffer to consecutive
// encryptions is safe; the returned ciphertexts are always fresh.
func (o *ORAM) stagePlaintext() []byte {
	if o.blockPt == nil {
		o.blockPt = make([]byte, o.blockSize)
	}
	clear(o.blockPt)
	return o.blockPt
}

// decryptBlock authenticates and decrypts a slot; it returns nil for
// dummies and an ErrIntegrity-wrapped error for anything that fails to
// verify.
func (o *ORAM) decryptBlock(ct []byte) (*block, error) {
	pt, err := o.cipher.OpenTo(o.ptBuf[:0], ct, o.ad)
	if err != nil {
		return nil, o.integrityErr("block authentication failed", err)
	}
	o.ptBuf = pt // keep the (possibly grown) scratch for the next block
	if len(pt) != o.blockSize {
		return nil, o.integrityErr(fmt.Sprintf("block has %d bytes, want %d", len(pt), o.blockSize), nil)
	}
	if pt[0] == 0 {
		return nil, nil
	}
	ver := binary.BigEndian.Uint64(pt[1 : 1+verWidth])
	keyEnd := 1 + verWidth + crypto.PadWidth(o.keyWidth)
	key, err := crypto.Unpad(pt[1+verWidth : keyEnd])
	if err != nil {
		return nil, o.integrityErr("unpadding key", err)
	}
	value := make([]byte, o.valueWidth)
	copy(value, pt[keyEnd:])
	return &block{key: string(key), value: value, ver: ver}, nil
}
