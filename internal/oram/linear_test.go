package oram

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"github.com/oblivfd/oblivfd/internal/crypto"
	"github.com/oblivfd/oblivfd/internal/store"
	"github.com/oblivfd/oblivfd/internal/trace"
)

// storeFactories lists both Store implementations for conformance tests.
func storeFactories() map[string]Factory {
	return map[string]Factory{
		"path":   PathFactory,
		"linear": LinearFactory,
	}
}

func newStore(t *testing.T, factory Factory, capacity, valueWidth int) (Store, *store.Server) {
	t.Helper()
	srv := store.NewServer()
	s, err := factory(srv, crypto.MustNewCipher(crypto.MustNewKey()), "kv", Config{
		Capacity: capacity, KeyWidth: 16, ValueWidth: valueWidth, Seed: 1,
	})
	if err != nil {
		t.Fatalf("factory: %v", err)
	}
	return s, srv
}

// TestStoreConformance runs the shared contract over both implementations.
func TestStoreConformance(t *testing.T) {
	for name, factory := range storeFactories() {
		t.Run(name, func(t *testing.T) {
			s, _ := newStore(t, factory, 16, 4)

			if _, found, err := s.Read("ghost"); err != nil || found {
				t.Errorf("Read(ghost) = %v, %v", found, err)
			}
			if err := s.Write("a", []byte{1, 2, 3, 4}); err != nil {
				t.Fatal(err)
			}
			v, found, err := s.Read("a")
			if err != nil || !found || !bytes.Equal(v, []byte{1, 2, 3, 4}) {
				t.Fatalf("Read(a) = %v, %v, %v", v, found, err)
			}
			if err := s.Write("a", []byte{9, 9, 9, 9}); err != nil {
				t.Fatal(err)
			}
			v, _, _ = s.Read("a")
			if !bytes.Equal(v, []byte{9, 9, 9, 9}) {
				t.Errorf("overwrite lost: %v", v)
			}
			if s.Len() != 1 {
				t.Errorf("Len = %d", s.Len())
			}
			if err := s.Remove("a"); err != nil {
				t.Fatal(err)
			}
			if _, found, _ := s.Read("a"); found {
				t.Error("key survives Remove")
			}
			if err := s.Remove("never"); err != nil {
				t.Errorf("Remove(absent): %v", err)
			}
			if err := s.Write("w", []byte{1, 2}); !errors.Is(err, ErrValueWidth) {
				t.Errorf("short value err = %v", err)
			}
			long := string(bytes.Repeat([]byte("x"), 17))
			if _, _, err := s.Read(long); !errors.Is(err, ErrKeyWidth) {
				t.Errorf("long key err = %v", err)
			}
			if s.Accesses() == 0 {
				t.Error("Accesses not counted")
			}
			if s.ClientMemoryBytes() < 0 {
				t.Error("negative client memory")
			}
		})
	}
}

// TestStoreConformanceRandomWorkload cross-checks both implementations
// against a map oracle under a random op sequence.
func TestStoreConformanceRandomWorkload(t *testing.T) {
	for name, factory := range storeFactories() {
		t.Run(name, func(t *testing.T) {
			const capacity = 24
			s, _ := newStore(t, factory, capacity, 4)
			oracle := make(map[string][]byte)
			rng := rand.New(rand.NewSource(5))
			for step := 0; step < 250; step++ {
				k := fmt.Sprintf("k%d", rng.Intn(capacity))
				switch rng.Intn(3) {
				case 0:
					v := []byte{byte(step), byte(step >> 8), 0, 1}
					if err := s.Write(k, v); err != nil {
						t.Fatalf("step %d Write: %v", step, err)
					}
					oracle[k] = v
				case 1:
					v, found, err := s.Read(k)
					if err != nil {
						t.Fatalf("step %d Read: %v", step, err)
					}
					want, ok := oracle[k]
					if found != ok || (ok && !bytes.Equal(v, want)) {
						t.Fatalf("step %d: Read(%s) = %v,%v want %v,%v", step, k, v, found, want, ok)
					}
				case 2:
					if err := s.Remove(k); err != nil {
						t.Fatalf("step %d Remove: %v", step, err)
					}
					delete(oracle, k)
				}
				if s.Len() != len(oracle) {
					t.Fatalf("step %d: Len = %d, oracle %d", step, s.Len(), len(oracle))
				}
			}
		})
	}
}

// TestLinearTraceFixed: every linear access touches every slot in the same
// order, whatever the operation — trace shapes are identical across Read
// hit/miss, Write insert/update, and Remove.
func TestLinearTraceFixed(t *testing.T) {
	shapes := make([]trace.Shape, 0, 5)
	for _, op := range []string{"readhit", "readmiss", "insert", "update", "remove"} {
		srv := store.NewServer()
		s, err := SetupLinear(srv, crypto.MustNewCipher(crypto.MustNewKey()), "lin", Config{
			Capacity: 8, KeyWidth: 8, ValueWidth: 4,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Write("present", []byte{1, 2, 3, 4}); err != nil {
			t.Fatal(err)
		}
		srv.Trace().Reset()
		srv.Trace().Enable()
		switch op {
		case "readhit":
			_, _, err = s.Read("present")
		case "readmiss":
			_, _, err = s.Read("absent")
		case "insert":
			err = s.Write("fresh", []byte{5, 6, 7, 8})
		case "update":
			err = s.Write("present", []byte{5, 6, 7, 8})
		case "remove":
			err = s.Remove("present")
		}
		if err != nil {
			t.Fatalf("%s: %v", op, err)
		}
		shapes = append(shapes, trace.ShapeOf(srv.Trace().Events()).Canonical())
	}
	for i := 1; i < len(shapes); i++ {
		if !shapes[0].Equal(shapes[i]) {
			t.Errorf("linear op %d trace differs:\n%s", i, shapes[0].Diff(shapes[i]))
		}
	}
}

func TestLinearFull(t *testing.T) {
	s, _ := newStore(t, LinearFactory, 3, 4)
	for i := 0; i < 3; i++ {
		if err := s.Write(fmt.Sprintf("k%d", i), []byte{byte(i), 0, 0, 0}); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Write("overflow", []byte{9, 9, 9, 9}); err == nil {
		t.Error("write into full linear ORAM succeeded")
	}
	// Updates still work at capacity.
	if err := s.Write("k1", []byte{7, 7, 7, 7}); err != nil {
		t.Errorf("update at capacity: %v", err)
	}
	// Freeing a slot admits a new key.
	if err := s.Remove("k0"); err != nil {
		t.Fatal(err)
	}
	if err := s.Write("newkey", []byte{1, 1, 1, 1}); err != nil {
		t.Errorf("write after remove: %v", err)
	}
}

func TestLinearSetupValidation(t *testing.T) {
	srv := store.NewServer()
	c := crypto.MustNewCipher(crypto.MustNewKey())
	if _, err := SetupLinear(srv, c, "x", Config{Capacity: 0, KeyWidth: 8, ValueWidth: 8}); err == nil {
		t.Error("capacity 0 accepted")
	}
	if _, err := SetupLinear(srv, c, "y", Config{Capacity: 4, KeyWidth: 0, ValueWidth: 8}); err == nil {
		t.Error("key width 0 accepted")
	}
}

func TestLinearDestroy(t *testing.T) {
	s, srv := newStore(t, LinearFactory, 4, 4)
	if err := s.Destroy(); err != nil {
		t.Fatal(err)
	}
	st, _ := srv.Stats()
	if st.Objects != 0 {
		t.Errorf("objects after destroy = %d", st.Objects)
	}
}
