package oram

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/oblivfd/oblivfd/internal/crypto"
	"github.com/oblivfd/oblivfd/internal/store"
	"github.com/oblivfd/oblivfd/internal/trace"
)

func newTestORAM(t *testing.T, capacity, valueWidth int) (*ORAM, *store.Server) {
	t.Helper()
	srv := store.NewServer()
	o, err := Setup(srv, crypto.MustNewCipher(crypto.MustNewKey()), "test", Config{
		Capacity:   capacity,
		KeyWidth:   32,
		ValueWidth: valueWidth,
		Seed:       1,
	})
	if err != nil {
		t.Fatalf("Setup: %v", err)
	}
	return o, srv
}

func val(width int, b byte) []byte {
	v := make([]byte, width)
	for i := range v {
		v[i] = b
	}
	return v
}

func TestSetupValidation(t *testing.T) {
	srv := store.NewServer()
	c := crypto.MustNewCipher(crypto.MustNewKey())
	bad := []Config{
		{Capacity: 0, KeyWidth: 8, ValueWidth: 8},
		{Capacity: 8, KeyWidth: 0, ValueWidth: 8},
		{Capacity: 8, KeyWidth: 8, ValueWidth: 0},
	}
	for i, cfg := range bad {
		if _, err := Setup(srv, c, fmt.Sprintf("bad%d", i), cfg); err == nil {
			t.Errorf("Setup(%+v) accepted", cfg)
		}
	}
}

func TestReadMissingReturnsNotFound(t *testing.T) {
	o, _ := newTestORAM(t, 16, 8)
	v, found, err := o.Read("ghost")
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if found || v != nil {
		t.Errorf("Read(ghost) = %v, %v; want nil, false", v, found)
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	o, _ := newTestORAM(t, 16, 8)
	if err := o.Write("alpha", val(8, 0xAA)); err != nil {
		t.Fatalf("Write: %v", err)
	}
	v, found, err := o.Read("alpha")
	if err != nil || !found {
		t.Fatalf("Read = %v, %v, %v", v, found, err)
	}
	if !bytes.Equal(v, val(8, 0xAA)) {
		t.Errorf("value = %v", v)
	}
}

func TestOverwrite(t *testing.T) {
	o, _ := newTestORAM(t, 16, 4)
	if err := o.Write("k", val(4, 1)); err != nil {
		t.Fatal(err)
	}
	if err := o.Write("k", val(4, 2)); err != nil {
		t.Fatal(err)
	}
	v, found, err := o.Read("k")
	if err != nil || !found || !bytes.Equal(v, val(4, 2)) {
		t.Errorf("after overwrite: %v, %v, %v", v, found, err)
	}
	if o.Len() != 1 {
		t.Errorf("Len = %d, want 1", o.Len())
	}
}

func TestRemove(t *testing.T) {
	o, _ := newTestORAM(t, 16, 4)
	if err := o.Write("k", val(4, 7)); err != nil {
		t.Fatal(err)
	}
	if err := o.Remove("k"); err != nil {
		t.Fatalf("Remove: %v", err)
	}
	if _, found, _ := o.Read("k"); found {
		t.Error("key still present after Remove")
	}
	if o.Len() != 0 {
		t.Errorf("Len = %d, want 0", o.Len())
	}
	// Removing an absent key is a no-op with the same access pattern.
	if err := o.Remove("never"); err != nil {
		t.Errorf("Remove(absent): %v", err)
	}
}

func TestValueWidthEnforced(t *testing.T) {
	o, _ := newTestORAM(t, 16, 8)
	if err := o.Write("k", val(7, 1)); !errors.Is(err, ErrValueWidth) {
		t.Errorf("short value err = %v", err)
	}
	if err := o.Write("k", val(9, 1)); !errors.Is(err, ErrValueWidth) {
		t.Errorf("long value err = %v", err)
	}
}

func TestKeyWidthEnforced(t *testing.T) {
	o, _ := newTestORAM(t, 16, 8)
	long := string(bytes.Repeat([]byte("x"), 33))
	if err := o.Write(long, val(8, 1)); !errors.Is(err, ErrKeyWidth) {
		t.Errorf("long key err = %v", err)
	}
	if _, _, err := o.Read(long); !errors.Is(err, ErrKeyWidth) {
		t.Errorf("long key read err = %v", err)
	}
}

func TestReturnedValueIsACopy(t *testing.T) {
	o, _ := newTestORAM(t, 16, 4)
	buf := val(4, 5)
	if err := o.Write("k", buf); err != nil {
		t.Fatal(err)
	}
	buf[0] = 99 // caller reuses its buffer
	v1, _, _ := o.Read("k")
	if v1[0] != 5 {
		t.Error("Write aliased the caller's buffer")
	}
	v1[0] = 77 // caller scribbles on the result
	v2, _, _ := o.Read("k")
	if v2[0] != 5 {
		t.Error("Read returned stash-internal storage")
	}
}

// TestManyKeysFullCapacity fills the ORAM to capacity and reads everything
// back, interleaving overwrites, with a reference map as oracle.
func TestManyKeysFullCapacity(t *testing.T) {
	const n = 256
	o, _ := newTestORAM(t, n, 8)
	oracle := make(map[string][]byte)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < n; i++ {
		k := fmt.Sprintf("key-%03d", i)
		v := val(8, byte(rng.Intn(256)))
		if err := o.Write(k, v); err != nil {
			t.Fatalf("Write %s: %v", k, err)
		}
		oracle[k] = v
	}
	// Random interleaved reads/overwrites/removals.
	for step := 0; step < 2*n; step++ {
		k := fmt.Sprintf("key-%03d", rng.Intn(n))
		switch rng.Intn(3) {
		case 0:
			v, found, err := o.Read(k)
			if err != nil {
				t.Fatalf("Read %s: %v", k, err)
			}
			want, ok := oracle[k]
			if found != ok || (ok && !bytes.Equal(v, want)) {
				t.Fatalf("Read %s = %v,%v; oracle %v,%v", k, v, found, want, ok)
			}
		case 1:
			v := val(8, byte(rng.Intn(256)))
			if err := o.Write(k, v); err != nil {
				t.Fatalf("Write %s: %v", k, err)
			}
			oracle[k] = v
		case 2:
			if err := o.Remove(k); err != nil {
				t.Fatalf("Remove %s: %v", k, err)
			}
			delete(oracle, k)
		}
	}
	for k, want := range oracle {
		v, found, err := o.Read(k)
		if err != nil || !found || !bytes.Equal(v, want) {
			t.Fatalf("final Read %s = %v,%v,%v; want %v", k, v, found, err, want)
		}
	}
	if o.Len() != len(oracle) {
		t.Errorf("Len = %d, oracle %d", o.Len(), len(oracle))
	}
}

// TestStashBound exercises the paper's stash limit of 7·log₂ n: a full
// random workload must never push the stash past the bound.
func TestStashBound(t *testing.T) {
	const n = 512
	o, _ := newTestORAM(t, n, 8)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < n; i++ {
		if err := o.Write(fmt.Sprintf("k%d", i), val(8, byte(i))); err != nil {
			t.Fatalf("Write: %v", err)
		}
	}
	for i := 0; i < 4*n; i++ {
		if _, _, err := o.Read(fmt.Sprintf("k%d", rng.Intn(n))); err != nil {
			t.Fatalf("Read: %v", err)
		}
	}
	if o.MaxStashSize() > o.StashLimit() {
		t.Errorf("stash high-water %d exceeded limit %d", o.MaxStashSize(), o.StashLimit())
	}
	t.Logf("stash high-water mark %d (limit %d)", o.MaxStashSize(), o.StashLimit())
}

// TestAccessPatternIndistinguishable checks Definition 4's core demand: a
// Read hit, a Read miss, a Write, and a Remove produce identical server
// trace shapes (one ReadPath + one WritePath of the same sizes).
func TestAccessPatternIndistinguishable(t *testing.T) {
	shapes := make([]trace.Shape, 0, 4)
	for _, op := range []string{"readhit", "readmiss", "write", "remove"} {
		srv := store.NewServer()
		o, err := Setup(srv, crypto.MustNewCipher(crypto.MustNewKey()), "t", Config{
			Capacity: 64, KeyWidth: 16, ValueWidth: 8, Seed: 11,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := o.Write("present", val(8, 1)); err != nil {
			t.Fatal(err)
		}
		srv.Trace().Reset()
		srv.Trace().Enable()
		switch op {
		case "readhit":
			_, _, err = o.Read("present")
		case "readmiss":
			_, _, err = o.Read("absent")
		case "write":
			err = o.Write("fresh", val(8, 2))
		case "remove":
			err = o.Remove("present")
		}
		if err != nil {
			t.Fatalf("%s: %v", op, err)
		}
		shapes = append(shapes, trace.ShapeOf(srv.Trace().Events()))
	}
	for i := 1; i < len(shapes); i++ {
		if !shapes[0].Equal(shapes[i]) {
			t.Errorf("operation %d trace differs from Read:\n%s", i, shapes[0].Diff(shapes[i]))
		}
	}
}

// TestFixedAccessCount verifies every operation costs exactly one path read
// and one path write.
func TestFixedAccessCount(t *testing.T) {
	o, srv := newTestORAM(t, 64, 8)
	const ops = 30
	for i := 0; i < ops; i++ {
		switch i % 3 {
		case 0:
			if err := o.Write(fmt.Sprintf("k%d", i), val(8, 1)); err != nil {
				t.Fatal(err)
			}
		case 1:
			if _, _, err := o.Read(fmt.Sprintf("k%d", i-1)); err != nil {
				t.Fatal(err)
			}
		case 2:
			if err := o.Remove(fmt.Sprintf("k%d", i)); err != nil {
				t.Fatal(err)
			}
		}
	}
	if got := srv.Trace().Count(trace.OpReadPath); got != ops {
		t.Errorf("ReadPath count = %d, want %d", got, ops)
	}
	if got := srv.Trace().Count(trace.OpWritePath); got != ops {
		t.Errorf("WritePath count = %d, want %d", got, ops)
	}
	if got := o.Accesses(); got != ops {
		t.Errorf("Accesses = %d, want %d", got, ops)
	}
}

// TestCiphertextsAlwaysFresh: the client must never write back a ciphertext
// it previously read (re-encryption requirement, §III-C).
func TestCiphertextsAlwaysFresh(t *testing.T) {
	srv := store.NewServer()
	o, err := Setup(srv, crypto.MustNewCipher(crypto.MustNewKey()), "t", Config{
		Capacity: 16, KeyWidth: 8, ValueWidth: 8, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[string]bool)
	// Wrap: after each op, scan all paths and record ciphertexts; check
	// that no ciphertext ever repeats across writes.
	for i := 0; i < 10; i++ {
		if err := o.Write(fmt.Sprintf("k%d", i), val(8, byte(i))); err != nil {
			t.Fatal(err)
		}
		for leaf := uint32(0); leaf < 16; leaf++ {
			slots, err := srv.ReadPath("t", leaf)
			if err != nil {
				t.Fatal(err)
			}
			for _, ct := range slots {
				if len(ct) == 0 {
					continue
				}
				seen[string(ct)] = true
			}
		}
	}
	// Every nonempty slot is encrypted with a fresh random nonce; with 16
	// leaves × 5 levels × 4 slots there must be plenty of distinct
	// ciphertexts and zero accidental collisions of full ciphertexts.
	if len(seen) < 10 {
		t.Errorf("suspiciously few distinct ciphertexts: %d", len(seen))
	}
}

func TestPropertyRandomWorkload(t *testing.T) {
	f := func(seed int64, opsRaw []byte) bool {
		srv := store.NewServer()
		o, err := Setup(srv, crypto.MustNewCipher(crypto.MustNewKey()), "t", Config{
			Capacity: 32, KeyWidth: 8, ValueWidth: 4, Seed: seed%1000 + 1,
		})
		if err != nil {
			return false
		}
		oracle := make(map[string][]byte)
		for _, b := range opsRaw {
			k := fmt.Sprintf("k%d", b%32)
			switch b % 3 {
			case 0:
				v := val(4, b)
				if err := o.Write(k, v); err != nil {
					return false
				}
				oracle[k] = v
			case 1:
				v, found, err := o.Read(k)
				if err != nil {
					return false
				}
				want, ok := oracle[k]
				if found != ok || (ok && !bytes.Equal(v, want)) {
					return false
				}
			case 2:
				if err := o.Remove(k); err != nil {
					return false
				}
				delete(oracle, k)
			}
		}
		return o.Len() == len(oracle)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestClientMemoryGrowsWithContent(t *testing.T) {
	o, _ := newTestORAM(t, 128, 8)
	empty := o.ClientMemoryBytes()
	for i := 0; i < 100; i++ {
		if err := o.Write(fmt.Sprintf("key-%d", i), val(8, 1)); err != nil {
			t.Fatal(err)
		}
	}
	full := o.ClientMemoryBytes()
	if full <= empty {
		t.Errorf("client memory did not grow: %d -> %d", empty, full)
	}
}

// TestNonDefaultParameters: Z and StashFactor are configurable; the ORAM
// must stay correct with tighter buckets.
func TestNonDefaultParameters(t *testing.T) {
	srv := store.NewServer()
	o, err := Setup(srv, crypto.MustNewCipher(crypto.MustNewKey()), "z2", Config{
		Capacity: 64, KeyWidth: 8, ValueWidth: 4, Z: 2, StashFactor: 20, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if o.StashLimit() != 20*6 { // 20 · ceil(log₂ 64)
		t.Errorf("StashLimit = %d, want 120", o.StashLimit())
	}
	oracle := make(map[string]byte)
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 300; i++ {
		k := fmt.Sprintf("k%d", rng.Intn(64))
		b := byte(rng.Intn(256))
		if err := o.Write(k, val(4, b)); err != nil {
			t.Fatalf("Write: %v", err)
		}
		oracle[k] = b
	}
	for k, b := range oracle {
		v, found, err := o.Read(k)
		if err != nil || !found || v[0] != b {
			t.Fatalf("Read(%s) = %v,%v,%v want %d", k, v, found, err, b)
		}
	}
	t.Logf("Z=2 stash high-water: %d (limit %d)", o.MaxStashSize(), o.StashLimit())
}

func TestAccessors(t *testing.T) {
	o, _ := newTestORAM(t, 20, 8)
	if o.Name() != "test" {
		t.Errorf("Name = %q", o.Name())
	}
	if o.Capacity() != 20 {
		t.Errorf("Capacity = %d", o.Capacity())
	}
	if o.ValueWidth() != 8 {
		t.Errorf("ValueWidth = %d", o.ValueWidth())
	}
	if err := o.Write("k", val(8, 1)); err != nil {
		t.Fatal(err)
	}
	if o.StashSize() < 0 || o.StashSize() > o.StashLimit() {
		t.Errorf("StashSize = %d", o.StashSize())
	}
}

// TestRandomSeedSetup covers the crypto-seeded RNG path (Seed == 0).
func TestRandomSeedSetup(t *testing.T) {
	srv := store.NewServer()
	o, err := Setup(srv, crypto.MustNewCipher(crypto.MustNewKey()), "rseed", Config{
		Capacity: 8, KeyWidth: 8, ValueWidth: 4, // Seed deliberately 0
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := o.Write("k", val(4, 9)); err != nil {
		t.Fatal(err)
	}
	v, found, err := o.Read("k")
	if err != nil || !found || v[0] != 9 {
		t.Errorf("Read = %v, %v, %v", v, found, err)
	}
}

func TestCapacityOne(t *testing.T) {
	o, _ := newTestORAM(t, 1, 4)
	if err := o.Write("only", val(4, 1)); err != nil {
		t.Fatalf("Write: %v", err)
	}
	v, found, err := o.Read("only")
	if err != nil || !found || !bytes.Equal(v, val(4, 1)) {
		t.Errorf("Read = %v, %v, %v", v, found, err)
	}
	if err := o.Remove("only"); err != nil {
		t.Fatal(err)
	}
	if o.Len() != 0 {
		t.Errorf("Len = %d", o.Len())
	}
}

// TestTreeFullyInitialized: after Setup every slot holds a same-size
// ciphertext — path-read sizes can never depend on access history.
func TestTreeFullyInitialized(t *testing.T) {
	srv := store.NewServer()
	_, err := Setup(srv, crypto.MustNewCipher(crypto.MustNewKey()), "t", Config{
		Capacity: 8, KeyWidth: 8, ValueWidth: 8, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	var size int
	for leaf := uint32(0); leaf < 8; leaf++ {
		slots, err := srv.ReadPath("t", leaf)
		if err != nil {
			t.Fatal(err)
		}
		for i, ct := range slots {
			if len(ct) == 0 {
				t.Fatalf("leaf %d slot %d empty after Setup", leaf, i)
			}
			if size == 0 {
				size = len(ct)
			}
			if len(ct) != size {
				t.Fatalf("slot sizes differ: %d vs %d", len(ct), size)
			}
		}
	}
}

// TestPathReadSizesConstant: every path read moves exactly the same number
// of bytes, before and after arbitrary accesses.
func TestPathReadSizesConstant(t *testing.T) {
	o, srv := newTestORAM(t, 32, 8)
	srv.Trace().Enable()
	for i := 0; i < 20; i++ {
		if err := o.Write(fmt.Sprintf("k%d", i), val(8, byte(i))); err != nil {
			t.Fatal(err)
		}
	}
	sizes := make(map[int]bool)
	for _, e := range srv.Trace().Events() {
		if e.Op == trace.OpReadPath {
			sizes[e.Bytes] = true
		}
	}
	if len(sizes) != 1 {
		t.Errorf("path reads moved %d distinct byte counts: %v", len(sizes), sizes)
	}
}

// TestHeavySameKeyWorkload: hammering a single key must not corrupt state
// or grow the stash (each access rewrites the same block).
func TestHeavySameKeyWorkload(t *testing.T) {
	o, _ := newTestORAM(t, 64, 8)
	for i := 0; i < 500; i++ {
		if err := o.Write("hot", val(8, byte(i))); err != nil {
			t.Fatal(err)
		}
		v, found, err := o.Read("hot")
		if err != nil || !found || v[0] != byte(i) {
			t.Fatalf("iteration %d: %v %v %v", i, v, found, err)
		}
	}
	if o.Len() != 1 {
		t.Errorf("Len = %d", o.Len())
	}
	if o.MaxStashSize() > o.StashLimit() {
		t.Errorf("stash %d exceeded limit %d", o.MaxStashSize(), o.StashLimit())
	}
}

func TestDestroyFreesServerObject(t *testing.T) {
	o, srv := newTestORAM(t, 16, 8)
	if err := o.Write("k", val(8, 1)); err != nil {
		t.Fatal(err)
	}
	if err := o.Destroy(); err != nil {
		t.Fatalf("Destroy: %v", err)
	}
	st, _ := srv.Stats()
	if st.Objects != 0 {
		t.Errorf("objects after Destroy = %d", st.Objects)
	}
}
