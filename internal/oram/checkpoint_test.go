package oram

import (
	"bytes"
	"fmt"
	"testing"

	"github.com/oblivfd/oblivfd/internal/crypto"
	"github.com/oblivfd/oblivfd/internal/store"
)

func newTestCipher(t *testing.T) *crypto.Cipher {
	t.Helper()
	key, err := crypto.NewKey()
	if err != nil {
		t.Fatal(err)
	}
	c, err := crypto.NewCipher(key)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestPathORAMStateResume checkpoints a live PathORAM mid-use and resumes it
// against the same (unchanged) server, verifying reads, continued writes, and
// the access counter carry over.
func TestPathORAMStateResume(t *testing.T) {
	svc := store.NewServer()
	cipher := newTestCipher(t)
	o, err := Setup(svc, cipher, "ck", Config{Capacity: 32, KeyWidth: 8, ValueWidth: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if err := o.Write(fmt.Sprintf("k%02d", i), []byte{byte(i), 0, 0, 0}); err != nil {
			t.Fatal(err)
		}
	}

	st := o.CheckpointState()
	if st.Path == nil || st.Linear != nil {
		t.Fatalf("path ORAM checkpoint = %+v, want Path set", st)
	}
	accesses := o.Accesses()

	// The checkpoint must be a deep copy: further accesses on the live
	// handle change server state, so from here on only the resumed handle
	// may touch svc. Mutating the live handle's maps must not leak in.
	for k := range st.Path.PosMap {
		if _, ok := o.posMap[k]; !ok {
			t.Fatalf("posMap key %q in state but not live handle", k)
		}
	}

	r, err := ResumeStore(svc, cipher, st)
	if err != nil {
		t.Fatal(err)
	}
	if r.Accesses() != accesses {
		t.Errorf("resumed accesses = %d, want %d", r.Accesses(), accesses)
	}
	if r.Len() != 20 {
		t.Errorf("resumed len = %d, want 20", r.Len())
	}
	for i := 0; i < 20; i++ {
		v, found, err := r.Read(fmt.Sprintf("k%02d", i))
		if err != nil {
			t.Fatal(err)
		}
		if !found || !bytes.Equal(v, []byte{byte(i), 0, 0, 0}) {
			t.Fatalf("k%02d after resume = %v (found %v)", i, v, found)
		}
	}
	// The resumed handle keeps working: overwrite, insert, remove.
	if err := r.Write("k00", []byte{99, 0, 0, 0}); err != nil {
		t.Fatal(err)
	}
	if err := r.Write("new", []byte{1, 2, 3, 4}); err != nil {
		t.Fatal(err)
	}
	if err := r.Remove("k01"); err != nil {
		t.Fatal(err)
	}
	if v, found, _ := r.Read("k00"); !found || v[0] != 99 {
		t.Errorf("k00 after resumed write = %v (found %v)", v, found)
	}
	if _, found, _ := r.Read("k01"); found {
		t.Error("k01 still present after resumed remove")
	}
	if r.Len() != 20 { // 20 + 1 insert - 1 remove
		t.Errorf("len after resumed mutations = %d, want 20", r.Len())
	}
}

func TestLinearStateResume(t *testing.T) {
	svc := store.NewServer()
	cipher := newTestCipher(t)
	l, err := SetupLinear(svc, cipher, "lin", Config{Capacity: 8, KeyWidth: 4, ValueWidth: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := l.Write(fmt.Sprintf("k%d", i), []byte{byte(i), 7}); err != nil {
			t.Fatal(err)
		}
	}
	st := l.CheckpointState()
	if st.Linear == nil || st.Path != nil {
		t.Fatalf("linear checkpoint = %+v, want Linear set", st)
	}

	r, err := ResumeStore(svc, cipher, st)
	if err != nil {
		t.Fatal(err)
	}
	if r.Len() != 5 || r.Accesses() != l.Accesses() {
		t.Errorf("resumed len/accesses = %d/%d, want %d/%d", r.Len(), r.Accesses(), 5, l.Accesses())
	}
	for i := 0; i < 5; i++ {
		v, found, err := r.Read(fmt.Sprintf("k%d", i))
		if err != nil {
			t.Fatal(err)
		}
		if !found || v[0] != byte(i) {
			t.Errorf("k%d after resume = %v (found %v)", i, v, found)
		}
	}
}

func TestResumeStateValidation(t *testing.T) {
	svc := store.NewServer()
	cipher := newTestCipher(t)
	cases := []struct {
		name string
		st   *StoreState
	}{
		{"nil state", nil},
		{"empty state", &StoreState{}},
		{"both set", &StoreState{Path: &State{}, Linear: &LinearState{}}},
		{"bad leaves", &StoreState{Path: &State{Name: "x", Capacity: 4, Z: 4, Levels: 3, NumLeaves: 5, KeyWidth: 1, ValueWidth: 1, StashLimit: 10}}},
		{"leaf out of range", &StoreState{Path: &State{Name: "x", Capacity: 4, Z: 4, Levels: 2, NumLeaves: 2, KeyWidth: 1, ValueWidth: 1, StashLimit: 10,
			PosMap: map[string]uint32{"k": 7}}}},
		{"linear no name", &StoreState{Linear: &LinearState{Capacity: 4, KeyWidth: 1, ValueWidth: 1}}},
	}
	for _, c := range cases {
		if _, err := ResumeStore(svc, cipher, c.st); err == nil {
			t.Errorf("%s: resume accepted", c.name)
		}
	}
}
