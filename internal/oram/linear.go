package oram

import (
	"encoding/binary"
	"fmt"

	"github.com/oblivfd/oblivfd/internal/crypto"
	"github.com/oblivfd/oblivfd/internal/store"
	"github.com/oblivfd/oblivfd/internal/telemetry"
)

// Store is the oblivious key-value interface the protocols consume
// (Definition 4's Read/Write plus the Remove needed by Algorithm 5). Two
// implementations exist:
//
//   - ORAM — non-recursive PathORAM: O(log n) per access, O(n) client
//     memory (position map + stash). The paper's choice.
//   - Linear — the trivial scan ORAM: O(n) per access, O(1) client
//     memory. Perfectly oblivious by construction, and faster than
//     PathORAM below a small crossover n because it has no per-access
//     tree bookkeeping (the ORAM-choice ablation quantifies it). Related
//     work's point that "any [ORAM] optimization can be applied easily"
//     (§VIII) holds because everything consumes this interface.
type Store interface {
	// Read retrieves the value under key (found=false for absent keys;
	// the access pattern must not depend on which).
	Read(key string) (value []byte, found bool, err error)
	// Write inserts or overwrites key.
	Write(key string, value []byte) error
	// Remove deletes key if present, indistinguishably from Read/Write.
	Remove(key string) error
	// Len returns the number of live keys.
	Len() int
	// Accesses counts oblivious accesses performed.
	Accesses() int64
	// ClientMemoryBytes estimates client-held state.
	ClientMemoryBytes() int
	// CheckpointState captures the client-held state for a client-local
	// checkpoint file; oram.ResumeStore rebuilds the handle from it.
	CheckpointState() *StoreState
	// SetTelemetry attaches (or, with nil, detaches) a metrics registry;
	// used to re-instrument handles rebuilt from checkpoints.
	SetTelemetry(reg *telemetry.Registry)
	// Destroy frees the server-side object.
	Destroy() error
}

var (
	_ Store = (*ORAM)(nil)
	_ Store = (*Linear)(nil)
)

// Factory builds a Store; engines take one so the ORAM construction is
// pluggable.
type Factory func(svc store.Service, cipher *crypto.Cipher, name string, cfg Config) (Store, error)

// PathFactory builds the paper's PathORAM.
func PathFactory(svc store.Service, cipher *crypto.Cipher, name string, cfg Config) (Store, error) {
	return Setup(svc, cipher, name, cfg)
}

// LinearFactory builds the trivial scan ORAM.
func LinearFactory(svc store.Service, cipher *crypto.Cipher, name string, cfg Config) (Store, error) {
	return SetupLinear(svc, cipher, name, cfg)
}

// Linear is the trivial ORAM: one server array of capacity slots; every
// access reads every slot, serves the operation, and rewrites every slot
// under fresh encryption. The access pattern is the full scan regardless of
// data — obliviousness by brute force. The client holds only the slot
// cursor: no position map, no stash.
//
// Freshness needs only O(1) client state here: because every access rewrites
// every slot, all slots always carry the same version, so one global counter
// (ver) detects any replayed or rolled-back slot. The associated data binds
// each ciphertext to its slot index, so swapped slots are caught too.
type Linear struct {
	svc        store.Service
	cipher     *crypto.Cipher
	name       string
	capacity   int
	keyWidth   int
	valueWidth int
	blockSize  int
	live       int
	accesses   int64
	ver        uint64 // version stamped into every slot by the last write pass

	reg       *telemetry.Registry
	accessCtr *telemetry.Counter
}

// slotAD is the associated-data slot binding a ciphertext to (array, index).
func (l *Linear) slotAD(i int) []byte {
	return []byte(fmt.Sprintf("lor:%s:%d", l.name, i))
}

// integrityErr wraps a verification failure in store.ErrIntegrity.
func (l *Linear) integrityErr(what string, cause error) error {
	if cause != nil {
		return fmt.Errorf("oram %q: %s: %v: %w", l.name, what, cause, store.ErrIntegrity)
	}
	return fmt.Errorf("oram %q: %s: %w", l.name, what, store.ErrIntegrity)
}

// SetTelemetry implements Store.
func (l *Linear) SetTelemetry(reg *telemetry.Registry) {
	l.reg = reg
	l.accessCtr = reg.Counter("oblivfd_oram_accesses_total")
}

// SetupLinear creates an empty linear ORAM with every slot holding an
// encrypted dummy (Z and StashFactor are ignored; the construction has no
// buckets or stash).
func SetupLinear(svc store.Service, cipher *crypto.Cipher, name string, cfg Config) (*Linear, error) {
	if cfg.Capacity < 1 {
		return nil, fmt.Errorf("oram: capacity %d < 1", cfg.Capacity)
	}
	if cfg.KeyWidth < 1 || cfg.ValueWidth < 1 {
		return nil, fmt.Errorf("oram: key/value widths must be positive (got %d, %d)", cfg.KeyWidth, cfg.ValueWidth)
	}
	l := &Linear{
		svc:        svc,
		cipher:     cipher,
		name:       name,
		capacity:   cfg.Capacity,
		keyWidth:   cfg.KeyWidth,
		valueWidth: cfg.ValueWidth,
		blockSize:  1 + verWidth + crypto.PadWidth(cfg.KeyWidth) + cfg.ValueWidth,
	}
	if cfg.Metrics != nil {
		l.SetTelemetry(cfg.Metrics)
	}
	if err := svc.CreateArray(name, cfg.Capacity); err != nil {
		return nil, fmt.Errorf("oram: creating linear array: %w", err)
	}
	for i := 0; i < cfg.Capacity; i++ {
		ct, err := l.encrypt("", nil, false, 0, i)
		if err != nil {
			return nil, err
		}
		if err := svc.WriteCells(name, []int64{int64(i)}, [][]byte{ct}); err != nil {
			return nil, fmt.Errorf("oram: initializing linear array: %w", err)
		}
	}
	return l, nil
}

// encrypt seals a slot as flag(1) ∥ version(8) ∥ padded key ∥ value, bound
// to its slot index. Dummies carry the version too, so a replayed dummy is
// as detectable as a replayed real block.
func (l *Linear) encrypt(key string, value []byte, real bool, ver uint64, idx int) ([]byte, error) {
	pt := make([]byte, l.blockSize)
	binary.BigEndian.PutUint64(pt[1:1+verWidth], ver)
	if real {
		pt[0] = 1
		padded, err := crypto.Pad([]byte(key), l.keyWidth)
		if err != nil {
			return nil, fmt.Errorf("oram: padding key: %w", err)
		}
		copy(pt[1+verWidth:], padded)
		copy(pt[1+verWidth+len(padded):], value)
	}
	return l.cipher.Seal(pt, l.slotAD(idx))
}

// decrypt authenticates a slot against its index and expected version.
func (l *Linear) decrypt(ct []byte, idx int, wantVer uint64) (key string, value []byte, real bool, err error) {
	pt, err := l.cipher.Open(ct, l.slotAD(idx))
	if err != nil {
		return "", nil, false, l.integrityErr(fmt.Sprintf("slot %d authentication failed", idx), err)
	}
	if len(pt) != l.blockSize {
		return "", nil, false, l.integrityErr(fmt.Sprintf("slot %d has %d bytes, want %d", idx, len(pt), l.blockSize), nil)
	}
	if ver := binary.BigEndian.Uint64(pt[1 : 1+verWidth]); ver != wantVer {
		return "", nil, false, l.integrityErr(fmt.Sprintf("stale slot %d: version %d, want %d", idx, ver, wantVer), nil)
	}
	if pt[0] == 0 {
		return "", nil, false, nil
	}
	keyEnd := 1 + verWidth + crypto.PadWidth(l.keyWidth)
	rawKey, err := crypto.Unpad(pt[1+verWidth : keyEnd])
	if err != nil {
		return "", nil, false, l.integrityErr(fmt.Sprintf("unpadding key of slot %d", idx), err)
	}
	v := make([]byte, l.valueWidth)
	copy(v, pt[keyEnd:])
	return string(rawKey), v, true, nil
}

type linearOp uint8

const (
	linRead linearOp = iota
	linWrite
	linRemove
)

// access performs two full scans: a read pass that locates the key (and
// the first free slot), then a write pass that rewrites every slot under
// fresh encryption, applying the operation at exactly one position. The
// trace is always capacity reads followed by capacity writes, in order —
// independent of the operation, its outcome, and the data.
func (l *Linear) access(key string, newValue []byte, kind linearOp) ([]byte, bool, error) {
	if len(key) > l.keyWidth {
		return nil, false, fmt.Errorf("%w: %d bytes, max %d", ErrKeyWidth, len(key), l.keyWidth)
	}
	l.accesses++
	l.accessCtr.Inc()
	sp := l.reg.StartSpan("oram/access")
	defer sp.End()

	// Read pass: one block of client memory at a time.
	matchIdx, firstFree := -1, -1
	var result []byte
	for i := 0; i < l.capacity; i++ {
		cts, err := l.svc.ReadCells(l.name, []int64{int64(i)})
		if err != nil {
			return nil, false, fmt.Errorf("oram: %w", err)
		}
		k, v, real, err := l.decrypt(cts[0], i, l.ver)
		if err != nil {
			return nil, false, err
		}
		switch {
		case real && k == key && matchIdx == -1:
			matchIdx = i
			result = v
		case !real && firstFree == -1:
			firstFree = i
		}
	}
	found := matchIdx != -1
	insertAt := -1
	if kind == linWrite && !found {
		if firstFree == -1 {
			return nil, false, fmt.Errorf("oram: linear ORAM full (%d keys)", l.capacity)
		}
		insertAt = firstFree
	}

	// Write pass: every slot rewritten; at most one slot's contents change.
	// Slot i is always re-read before it is overwritten, so the read side
	// still expects the old version while the written copy carries the new
	// one; bumping l.ver after the loop commits the whole pass at once.
	for i := 0; i < l.capacity; i++ {
		cts, err := l.svc.ReadCells(l.name, []int64{int64(i)})
		if err != nil {
			return nil, false, fmt.Errorf("oram: %w", err)
		}
		k, v, real, err := l.decrypt(cts[0], i, l.ver)
		if err != nil {
			return nil, false, err
		}
		switch {
		case i == matchIdx && kind == linWrite:
			v = newValue
		case i == matchIdx && kind == linRemove:
			k, v, real = "", nil, false
		case i == insertAt:
			k, v, real = key, newValue, true
		}
		ct, err := l.encrypt(k, v, real, l.ver+1, i)
		if err != nil {
			return nil, false, err
		}
		if err := l.svc.WriteCells(l.name, []int64{int64(i)}, [][]byte{ct}); err != nil {
			return nil, false, fmt.Errorf("oram: %w", err)
		}
	}
	l.ver++

	switch kind {
	case linWrite:
		if !found {
			l.live++
		}
		return append([]byte(nil), newValue...), true, nil
	case linRemove:
		if found {
			l.live--
		}
		return nil, found, nil
	default:
		if !found {
			return nil, false, nil
		}
		return append([]byte(nil), result...), true, nil
	}
}

// Read implements Store.
func (l *Linear) Read(key string) ([]byte, bool, error) { return l.access(key, nil, linRead) }

// Write implements Store.
func (l *Linear) Write(key string, value []byte) error {
	if len(value) != l.valueWidth {
		return fmt.Errorf("%w: got %d bytes, want %d", ErrValueWidth, len(value), l.valueWidth)
	}
	_, _, err := l.access(key, value, linWrite)
	return err
}

// Remove implements Store.
func (l *Linear) Remove(key string) error {
	_, _, err := l.access(key, nil, linRemove)
	return err
}

// Len implements Store.
func (l *Linear) Len() int { return l.live }

// Accesses implements Store.
func (l *Linear) Accesses() int64 { return l.accesses }

// ClientMemoryBytes implements Store: one block in flight plus counters and
// the global freshness version.
func (l *Linear) ClientMemoryBytes() int { return l.blockSize + 16 + verWidth }

// Destroy implements Store.
func (l *Linear) Destroy() error { return l.svc.Delete(l.name) }
