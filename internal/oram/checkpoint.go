package oram

import (
	"fmt"

	"github.com/oblivfd/oblivfd/internal/crypto"
	"github.com/oblivfd/oblivfd/internal/store"
)

// Client-side checkpointing: an ORAM's secret client state (position map and
// stash — exactly the data that must never reach the server) is small, so it
// serializes into a client-local checkpoint file and reattaches to the
// server-side tree on resume. The tree itself is NOT part of the state: the
// durable server persists it independently, and resume only works against a
// server whose storage matches the moment the state was captured (the
// engines enforce that with recovery epochs).

// State is the serializable client state of a PathORAM handle.
type State struct {
	Name       string
	Capacity   int
	Z          int
	Levels     int
	NumLeaves  int
	KeyWidth   int
	ValueWidth int
	StashLimit int
	MaxStash   int
	Accesses   int64
	Seed       int64 // seeds the resumed handle's leaf-choice RNG
	PosMap     map[string]uint32
	Stash      map[string][]byte
	// Vers holds the freshness tags (block versions) — without them a
	// resumed handle could not detect rollback of the server-side tree.
	Vers map[string]uint64
}

// State captures the client state. Maps are deep-copied so later accesses on
// the live handle cannot mutate the checkpoint. The resumed handle gets a
// fresh RNG seed drawn from the live one; leaf choices after resume differ
// from the uninterrupted run's, which is invisible to the adversary (both
// are uniform) and irrelevant to correctness.
func (o *ORAM) State() *State {
	seed := o.rng.Int63()
	if seed == 0 {
		seed = 1
	}
	st := &State{
		Name:       o.name,
		Capacity:   o.capacity,
		Z:          o.z,
		Levels:     o.levels,
		NumLeaves:  o.numLeaves,
		KeyWidth:   o.keyWidth,
		ValueWidth: o.valueWidth,
		StashLimit: o.stashLimit,
		MaxStash:   o.maxStash,
		Accesses:   o.accesses,
		Seed:       seed,
		PosMap:     make(map[string]uint32, len(o.posMap)),
		Stash:      make(map[string][]byte, len(o.stash)),
		Vers:       make(map[string]uint64, len(o.vers)),
	}
	for k, v := range o.posMap {
		st.PosMap[k] = v
	}
	for k, v := range o.stash {
		st.Stash[k] = append([]byte(nil), v...)
	}
	for k, v := range o.vers {
		st.Vers[k] = v
	}
	return st
}

// Resume rebuilds a PathORAM handle from captured state, attaching to the
// existing server-side tree (no creation, no re-initialization). The
// server's tree must be in exactly the state it had when State was captured;
// the caller is responsible for that invariant (see core.Resume).
func Resume(svc store.Service, cipher *crypto.Cipher, st *State) (*ORAM, error) {
	if err := st.validate(); err != nil {
		return nil, err
	}
	o := &ORAM{
		svc:        svc,
		cipher:     cipher,
		name:       st.Name,
		capacity:   st.Capacity,
		z:          st.Z,
		levels:     st.Levels,
		numLeaves:  st.NumLeaves,
		keyWidth:   st.KeyWidth,
		valueWidth: st.ValueWidth,
		blockSize:  1 + verWidth + crypto.PadWidth(st.KeyWidth) + st.ValueWidth,
		posMap:     make(map[string]uint32, len(st.PosMap)),
		stash:      make(map[string][]byte, len(st.Stash)),
		vers:       make(map[string]uint64, len(st.Vers)),
		ad:         treeAD(st.Name),
		stashLimit: st.StashLimit,
		maxStash:   st.MaxStash,
		accesses:   st.Accesses,
		rng:        newRNG(st.Seed),
	}
	for k, v := range st.PosMap {
		o.posMap[k] = v
	}
	for k, v := range st.Stash {
		o.stash[k] = append([]byte(nil), v...)
	}
	for k, v := range st.Vers {
		o.vers[k] = v
	}
	return o, nil
}

func (st *State) validate() error {
	if st.Name == "" {
		return fmt.Errorf("oram: resume: empty object name")
	}
	if st.Capacity < 1 || st.KeyWidth < 1 || st.ValueWidth < 1 {
		return fmt.Errorf("oram: resume %q: invalid shape (capacity %d, widths %d/%d)",
			st.Name, st.Capacity, st.KeyWidth, st.ValueWidth)
	}
	if st.Z < 1 || st.Levels < 1 || st.NumLeaves != 1<<(st.Levels-1) {
		return fmt.Errorf("oram: resume %q: inconsistent tree shape (Z %d, %d levels, %d leaves)",
			st.Name, st.Z, st.Levels, st.NumLeaves)
	}
	if st.StashLimit < 1 {
		return fmt.Errorf("oram: resume %q: stash limit %d < 1", st.Name, st.StashLimit)
	}
	for k, leaf := range st.PosMap {
		if int(leaf) >= st.NumLeaves {
			return fmt.Errorf("oram: resume %q: key %q maps to leaf %d of %d", st.Name, k, leaf, st.NumLeaves)
		}
	}
	return nil
}

// LinearState is the serializable client state of a Linear handle — just
// parameters and counters; the construction keeps no per-key client state.
type LinearState struct {
	Name       string
	Capacity   int
	KeyWidth   int
	ValueWidth int
	Live       int
	Accesses   int64
	// Ver is the global freshness version all slots currently carry; a
	// resumed handle rejects any slot at a different version (rollback).
	Ver uint64
}

// State captures the client state of a linear ORAM.
func (l *Linear) State() *LinearState {
	return &LinearState{
		Name:       l.name,
		Capacity:   l.capacity,
		KeyWidth:   l.keyWidth,
		ValueWidth: l.valueWidth,
		Live:       l.live,
		Accesses:   l.accesses,
		Ver:        l.ver,
	}
}

// ResumeLinear rebuilds a Linear handle attached to the existing server
// array.
func ResumeLinear(svc store.Service, cipher *crypto.Cipher, st *LinearState) (*Linear, error) {
	if st.Name == "" {
		return nil, fmt.Errorf("oram: resume: empty object name")
	}
	if st.Capacity < 1 || st.KeyWidth < 1 || st.ValueWidth < 1 {
		return nil, fmt.Errorf("oram: resume %q: invalid shape (capacity %d, widths %d/%d)",
			st.Name, st.Capacity, st.KeyWidth, st.ValueWidth)
	}
	return &Linear{
		svc:        svc,
		cipher:     cipher,
		name:       st.Name,
		capacity:   st.Capacity,
		keyWidth:   st.KeyWidth,
		valueWidth: st.ValueWidth,
		blockSize:  1 + verWidth + crypto.PadWidth(st.KeyWidth) + st.ValueWidth,
		live:       st.Live,
		accesses:   st.Accesses,
		ver:        st.Ver,
	}, nil
}

// StoreState is the checkpoint form of any Store implementation: exactly one
// field is set, selecting the construction to resume.
type StoreState struct {
	Path   *State
	Linear *LinearState
}

// CheckpointState implements Store.
func (o *ORAM) CheckpointState() *StoreState { return &StoreState{Path: o.State()} }

// CheckpointState implements Store.
func (l *Linear) CheckpointState() *StoreState { return &StoreState{Linear: l.State()} }

// ResumeStore rebuilds whichever construction the state describes.
func ResumeStore(svc store.Service, cipher *crypto.Cipher, st *StoreState) (Store, error) {
	switch {
	case st == nil:
		return nil, fmt.Errorf("oram: resume: nil store state")
	case st.Path != nil && st.Linear != nil:
		return nil, fmt.Errorf("oram: resume: ambiguous store state (both constructions set)")
	case st.Path != nil:
		return Resume(svc, cipher, st.Path)
	case st.Linear != nil:
		return ResumeLinear(svc, cipher, st.Linear)
	default:
		return nil, fmt.Errorf("oram: resume: empty store state")
	}
}
