package oram

import (
	"fmt"
	"testing"

	"github.com/oblivfd/oblivfd/internal/crypto"
	"github.com/oblivfd/oblivfd/internal/store"
)

func benchORAM(tb testing.TB, capacity int) *ORAM {
	tb.Helper()
	srv := store.NewServer()
	o, err := Setup(srv, crypto.MustNewCipher(crypto.MustNewKey()), "bench", Config{
		Capacity:   capacity,
		KeyWidth:   32,
		ValueWidth: 16,
		Seed:       1,
	})
	if err != nil {
		tb.Fatalf("Setup: %v", err)
	}
	v := make([]byte, 16)
	for i := 0; i < capacity; i++ {
		if err := o.Write(fmt.Sprintf("key%04d", i), v); err != nil {
			tb.Fatalf("Write: %v", err)
		}
	}
	return o
}

// BenchmarkPathAccess measures one full oblivious access (path read, block
// decryption, eviction, path re-encryption) against the in-memory server, so
// allocs/op reflects the client-side codec cost with no network noise.
func BenchmarkPathAccess(b *testing.B) {
	o := benchORAM(b, 256)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := o.Read(fmt.Sprintf("key%04d", i%256)); err != nil {
			b.Fatal(err)
		}
	}
}

// TestPathAccessAllocs bounds the per-access allocation count. One access
// touches levels×z slots; before the scratch-buffer reuse in decryptBlock,
// encryptBlock, encryptDummy, and evict, each slot cost several allocations
// (plaintext, pad, ciphertext staging), totalling hundreds per access. With
// reuse, the remaining allocations are the per-slot Seal outputs (which must
// stay fresh — the in-process server retains them), stash/value copies, and
// map churn. The bound is deliberately loose; it exists to catch the
// reintroduction of per-slot scratch allocations, not to pin an exact count.
func TestPathAccessAllocs(t *testing.T) {
	o := benchORAM(t, 256)
	// levels for capacity 256: tree has 256 leaves → 9 levels; z = 4.
	slots := o.levels * o.z
	i := 0
	allocs := testing.AllocsPerRun(100, func() {
		if _, _, err := o.Read(fmt.Sprintf("key%04d", i%256)); err != nil {
			t.Fatal(err)
		}
		i++
	})
	// Budget: ~3 allocations per slot (Seal's nonce+ciphertext growth and
	// AEAD internals) plus a fixed overhead for the returned value, key
	// formatting, and map operations.
	budget := float64(3*slots + 32)
	if allocs > budget {
		t.Errorf("oblivious access allocates %.1f times per op, budget %.0f (%d slots)", allocs, budget, slots)
	}
}
