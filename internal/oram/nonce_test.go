package oram

import (
	"fmt"
	"sync"
	"testing"

	"github.com/oblivfd/oblivfd/internal/crypto"
	"github.com/oblivfd/oblivfd/internal/store"
)

// nonceRecorder observes every ciphertext the client ships to storage and
// indexes it by its GCM nonce prefix. AES-GCM is catastrophically broken by
// nonce reuse under one key (it leaks the XOR of plaintexts and the auth
// subkey), and the ORAMs re-encrypt every touched block on every access, so
// the nonce draw rate here is orders of magnitude above a typical AEAD
// user's — this property test pins down that each re-encryption draws a
// fresh random nonce.
type nonceRecorder struct {
	store.Service
	mu     sync.Mutex
	seen   map[string]bool
	total  int
	reused int
}

func newNonceRecorder(svc store.Service) *nonceRecorder {
	return &nonceRecorder{Service: svc, seen: make(map[string]bool)}
}

func (r *nonceRecorder) observe(cts [][]byte) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, ct := range cts {
		if len(ct) < crypto.NonceSize {
			continue
		}
		n := string(ct[:crypto.NonceSize])
		if r.seen[n] {
			r.reused++
		}
		r.seen[n] = true
		r.total++
	}
}

func (r *nonceRecorder) WriteCells(name string, idx []int64, cts [][]byte) error {
	r.observe(cts)
	return r.Service.WriteCells(name, idx, cts)
}

func (r *nonceRecorder) WritePath(name string, leaf uint32, slots [][]byte) error {
	r.observe(slots)
	return r.Service.WritePath(name, leaf, slots)
}

func (r *nonceRecorder) WriteBuckets(name string, bucketStart int, slots [][]byte) error {
	r.observe(slots)
	return r.Service.WriteBuckets(name, bucketStart, slots)
}

func (r *nonceRecorder) stats() (total, reused int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total, r.reused
}

// TestPathORAMNeverReusesNonce: across setup plus hundreds of accesses (each
// re-encrypting a full tree path of real and dummy blocks), no two
// ciphertexts under the tree's key ever share a nonce.
func TestPathORAMNeverReusesNonce(t *testing.T) {
	rec := newNonceRecorder(store.NewServer())
	o, err := Setup(rec, crypto.MustNewCipher(crypto.MustNewKey()), "nonce", Config{
		Capacity:   32,
		KeyWidth:   16,
		ValueWidth: 8,
		Seed:       7,
	})
	if err != nil {
		t.Fatalf("Setup: %v", err)
	}
	for i := 0; i < 300; i++ {
		k := fmt.Sprintf("k%d", i%32)
		if err := o.Write(k, val(8, byte(i))); err != nil {
			t.Fatalf("Write %d: %v", i, err)
		}
		if _, _, err := o.Read(k); err != nil {
			t.Fatalf("Read %d: %v", i, err)
		}
	}
	total, reused := rec.stats()
	if reused != 0 {
		t.Errorf("nonce reused %d times across %d ciphertexts", reused, total)
	}
	if total < 1000 {
		t.Errorf("recorder saw only %d ciphertexts; wiring broken?", total)
	}
}

// TestLinearORAMNeverReusesNonce: the linear ORAM rewrites every slot on
// every access, the densest re-encryption pattern in the system.
func TestLinearORAMNeverReusesNonce(t *testing.T) {
	rec := newNonceRecorder(store.NewServer())
	l, err := SetupLinear(rec, crypto.MustNewCipher(crypto.MustNewKey()), "nonce", Config{
		Capacity:   16,
		KeyWidth:   16,
		ValueWidth: 8,
		Seed:       7,
	})
	if err != nil {
		t.Fatalf("SetupLinear: %v", err)
	}
	for i := 0; i < 100; i++ {
		k := fmt.Sprintf("k%d", i%16)
		if err := l.Write(k, val(8, byte(i))); err != nil {
			t.Fatalf("Write %d: %v", i, err)
		}
		if _, _, err := l.Read(k); err != nil {
			t.Fatalf("Read %d: %v", i, err)
		}
	}
	total, reused := rec.stats()
	if reused != 0 {
		t.Errorf("nonce reused %d times across %d ciphertexts", reused, total)
	}
	if total < 1000 {
		t.Errorf("recorder saw only %d ciphertexts; wiring broken?", total)
	}
}
