package oblivfd

// One testing.B benchmark per table and figure of the paper's evaluation
// (§VII). Each wraps the corresponding experiment from internal/bench at a
// size small enough for routine `go test -bench=.` runs and reports the
// headline quantity via b.ReportMetric; `cmd/fdbench` runs the same
// experiments at paper-like scales and prints the full tables.

import (
	"fmt"
	"testing"
	"time"

	"github.com/oblivfd/oblivfd/internal/bench"
	"github.com/oblivfd/oblivfd/internal/core"
	"github.com/oblivfd/oblivfd/internal/crypto"
	"github.com/oblivfd/oblivfd/internal/dataset"
	"github.com/oblivfd/oblivfd/internal/oram"
	"github.com/oblivfd/oblivfd/internal/store"
	"github.com/oblivfd/oblivfd/securefd"
)

// BenchmarkTable1Datasets regenerates the Table I dataset summary (sampled
// rows; full sizes via `fdbench -exp table1`).
func BenchmarkTable1Datasets(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := bench.Table1(500, 1)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Rows) != 3 {
			b.Fatal("wrong row count")
		}
	}
}

// BenchmarkTable2Obliviousness runs the KS-test obliviousness experiment at
// reduced scale and reports the minimum p-value (paper: all ≥ 0.35).
func BenchmarkTable2Obliviousness(b *testing.B) {
	var minP float64 = 1
	for i := 0; i < b.N; i++ {
		res, err := bench.Table2(bench.Table2Config{Rows: 64, Runs: 3, Seed: int64(i + 1)})
		if err != nil {
			b.Fatal(err)
		}
		if p := res.MinPValue(); p < minP {
			minP = p
		}
	}
	b.ReportMetric(minP, "min-p-value")
}

// BenchmarkTable3Complexity runs the measured-scaling sweep behind the
// complexity summary.
func BenchmarkTable3Complexity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.Table3([]int{32, 128}, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig4RowScalability measures one partition computation per
// (method, case, n) — the Fig. 4 series.
func BenchmarkFig4RowScalability(b *testing.B) {
	for _, method := range bench.AllMethods {
		for _, multi := range []bool{false, true} {
			caseName := "single"
			if multi {
				caseName = "multi"
			}
			for _, n := range []int{128, 512} {
				b.Run(fmt.Sprintf("%s/%s/n=%d", method, caseName, n), func(b *testing.B) {
					for i := 0; i < b.N; i++ {
						if _, err := bench.Fig4Single(method, multi, n, int64(i+1)); err != nil {
							b.Fatal(err)
						}
					}
				})
			}
		}
	}
}

// BenchmarkFig5Storage measures server storage and client memory for one
// partition per method — the Fig. 5 series — reported as metrics.
func BenchmarkFig5Storage(b *testing.B) {
	for _, method := range bench.AllMethods {
		b.Run(string(method), func(b *testing.B) {
			var server int64
			var client int
			for i := 0; i < b.N; i++ {
				res, err := bench.Fig5([]int{256}, int64(i+1))
				if err != nil {
					b.Fatal(err)
				}
				p, _ := res.Point(method, 256)
				server, client = p.ServerBytes, p.ClientBytes
			}
			b.ReportMetric(float64(server), "server-bytes")
			b.ReportMetric(float64(client), "client-bytes")
		})
	}
}

// BenchmarkFig6aParallelism measures the Sort thread sweep with modeled
// network latency and reports the 1→4 thread speedup.
func BenchmarkFig6aParallelism(b *testing.B) {
	var speedup float64
	for i := 0; i < b.N; i++ {
		res, err := bench.Fig6a(32, []int{1, 4}, 100*time.Microsecond, int64(i+1))
		if err != nil {
			b.Fatal(err)
		}
		speedup = float64(res.Points[0].Runtime) / float64(res.Points[1].Runtime)
	}
	b.ReportMetric(speedup, "speedup-1to4")
}

// BenchmarkFig6bEnclave measures the Sort protocol against its enclave
// deployment and reports the speedup factor.
func BenchmarkFig6bEnclave(b *testing.B) {
	var speedup float64
	for i := 0; i < b.N; i++ {
		res, err := bench.Fig6b([]int{256}, int64(i+1))
		if err != nil {
			b.Fatal(err)
		}
		p := res.Points[0]
		speedup = float64(p.Outside) / float64(p.Enclave)
	}
	b.ReportMetric(speedup, "enclave-speedup")
}

// BenchmarkFig7Dynamic measures Ex-ORAM per-operation insert/delete latency
// and reports them as metrics.
func BenchmarkFig7Dynamic(b *testing.B) {
	var ins, del time.Duration
	for i := 0; i < b.N; i++ {
		res, err := bench.Fig7([]int{64}, int64(i+1))
		if err != nil {
			b.Fatal(err)
		}
		p, _ := res.Point(64, false)
		ins, del = p.InsertAvg, p.DeleteAvg
	}
	b.ReportMetric(float64(ins.Microseconds()), "insert-us")
	b.ReportMetric(float64(del.Microseconds()), "delete-us")
}

// --- micro-benchmarks for the substrates ---

// BenchmarkORAMAccess measures one oblivious key-value access.
func BenchmarkORAMAccess(b *testing.B) {
	srv := store.NewServer()
	o, err := oram.Setup(srv, crypto.MustNewCipher(crypto.MustNewKey()), "b", oram.Config{
		Capacity: 1024, KeyWidth: 8, ValueWidth: 8, Seed: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	val := make([]byte, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := o.Write(fmt.Sprintf("k%d", i%1024), val); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCellEncryption measures one cell encrypt+decrypt round trip.
func BenchmarkCellEncryption(b *testing.B) {
	c := crypto.MustNewCipher(crypto.MustNewKey())
	cell := []byte("employee-record-value")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ct, err := c.Encrypt(cell)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := c.Decrypt(ct); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFullDiscovery measures end-to-end secure discovery on a small
// Adult sample with every protocol.
func BenchmarkFullDiscovery(b *testing.B) {
	rel := dataset.Adult(100, 1)
	for _, p := range []securefd.Protocol{
		securefd.ProtocolSort, securefd.ProtocolORAM,
		securefd.ProtocolDynamicORAM, securefd.ProtocolPlaintext,
		securefd.ProtocolEnclave,
	} {
		b.Run(p.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				db, err := securefd.Outsource(securefd.NewServer(), rel, securefd.Options{
					Protocol: p, Workers: 2, MaxLHS: 2,
				})
				if err != nil {
					b.Fatal(err)
				}
				if _, err := db.Discover(); err != nil {
					b.Fatal(err)
				}
				db.Close()
			}
		})
	}
}

// BenchmarkPartitionSingle measures one Algorithm 1/3/4 run per engine at a
// fixed n, the core primitive every experiment builds on.
func BenchmarkPartitionSingle(b *testing.B) {
	rel := dataset.RND(2, 256, 1)
	for _, method := range bench.AllMethods {
		b.Run(string(method), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				srv := store.NewServer()
				cipher := crypto.MustNewCipher(crypto.MustNewKey())
				edb, err := core.Upload(srv, cipher, fmt.Sprintf("p%d", i), rel)
				if err != nil {
					b.Fatal(err)
				}
				var eng core.Engine
				switch method {
				case bench.MethodOrORAM:
					eng = core.NewOrEngine(edb)
				case bench.MethodExORAM:
					eng, err = core.NewExEngine(edb)
					if err != nil {
						b.Fatal(err)
					}
				case bench.MethodSort:
					eng = core.NewSortEngine(edb, 1)
				}
				b.StartTimer()
				if _, err := eng.CardinalitySingle(0); err != nil {
					b.Fatal(err)
				}
				b.StopTimer()
				eng.Close()
				b.StartTimer()
			}
		})
	}
}
