package oblivfd

// Multi-tenant acceptance tests: N concurrent clients spread over M database
// namespaces on one fdserver, under the chaos fault mix, must each produce
// exactly the FD set of a serial fault-free run — and an overloaded server
// must shed with the retryable error instead of ever returning a wrong
// answer. Run with -race: the session registry, namespacing, and per-tenant
// marks are exactly the shared state these clients contend on.

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"github.com/oblivfd/oblivfd/internal/relation"
	"github.com/oblivfd/oblivfd/internal/store"
	"github.com/oblivfd/oblivfd/internal/transport"
	"github.com/oblivfd/oblivfd/securefd"
)

// tenantClients is the concurrency of the acceptance scenario: 4 clients
// across 2 database namespaces.
const (
	tenantClients   = 4
	tenantDatabases = 2
)

// startTenantServer exposes a multi-tenant, fault-injected store over a
// drop-injecting TCP listener.
func startTenantServer(t *testing.T, seed int64, limits store.SessionLimits) (*transport.Server, *store.FaultService, string) {
	t.Helper()
	faulty := store.WithFaults(store.NewServer(), store.FaultConfig{
		Seed:      seed,
		ErrorRate: chaosErrorRate,
		SpikeRate: chaosSpikeRate,
		Spike:     200 * time.Microsecond,
	})
	srv := transport.NewServer(faulty)
	srv.SetSessionLimits(limits)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	fl := transport.WithConnFaults(l, transport.FaultConfig{Seed: seed + 1, DropRate: chaosDropRate})
	go func() { _ = srv.Serve(fl) }()
	t.Cleanup(func() { l.Close() })
	return srv, faulty, l.Addr().String()
}

// tenantDiscover runs one client's discovery inside the given namespace and
// returns its minimal FDs.
func tenantDiscover(addr, db string, rel *securefd.Relation, policy store.RetryPolicy) ([]relation.FD, error) {
	cfg := chaosClientConfig()
	cfg.Database = db
	pool, err := transport.DialPoolWith(addr, 2, cfg)
	if err != nil {
		return nil, fmt.Errorf("dial %s as %s: %w", addr, db, err)
	}
	defer pool.Close()
	svc := store.WithRetry(pool, policy)
	handle, err := securefd.Outsource(svc, rel, securefd.Options{
		Protocol: securefd.ProtocolSort, Workers: 2, MaxLHS: 2,
	})
	if err != nil {
		return nil, fmt.Errorf("outsource as %s: %w", db, err)
	}
	defer handle.Close()
	report, err := handle.Discover()
	if err != nil {
		return nil, fmt.Errorf("discover as %s: %w", db, err)
	}
	return report.Minimal, nil
}

// TestMultiTenantChaosDiscovery: 4 concurrent clients over 2 namespaces,
// under the 3% chaos fault mix, each complete and match their own serial
// fault-free baseline — no cross-tenant interference, no corruption.
func TestMultiTenantChaosDiscovery(t *testing.T) {
	// One distinct relation per client so a cross-tenant mixup cannot
	// accidentally produce the right answer.
	rels := make([]*securefd.Relation, tenantClients)
	wants := make([][]relation.FD, tenantClients)
	for i := range rels {
		rels[i] = securefd.GenerateRND(5, 32, int64(21+7*i))
		wants[i] = referenceFDs(t, rels[i])
	}

	_, faulty, addr := startTenantServer(t, 4242, store.SessionLimits{})
	policy := store.RetryPolicy{
		MaxAttempts:    10,
		InitialBackoff: time.Millisecond,
		MaxBackoff:     50 * time.Millisecond,
		Seed:           9,
	}

	var wg sync.WaitGroup
	errs := make([]error, tenantClients)
	got := make([][]relation.FD, tenantClients)
	for i := 0; i < tenantClients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			db := fmt.Sprintf("tenant-%d", i%tenantDatabases)
			got[i], errs[i] = tenantDiscover(addr, db, rels[i], policy)
		}(i)
	}
	wg.Wait()

	for i := 0; i < tenantClients; i++ {
		if errs[i] != nil {
			t.Errorf("client %d: %v", i, errs[i])
			continue
		}
		if !relation.FDSetEqual(got[i], wants[i]) {
			t.Errorf("client %d FDs under multi-tenant chaos = %v, want %v", i, got[i], wants[i])
		}
	}
	st, err := faulty.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.FaultsInjected == 0 {
		t.Error("chaos run injected no faults; rates too low to prove anything")
	}
	t.Logf("multi-tenant chaos: %d clients over %d namespaces, %d faults injected",
		tenantClients, tenantDatabases, st.FaultsInjected)
}

// TestMultiTenantOverloadSheds: a server with a tight global in-flight
// budget sheds aggressively, yet every retrying client still finishes with
// the exact baseline FDs — graceful degradation, never wrong answers. A
// deliberately non-retrying client observes the typed retryable error.
func TestMultiTenantOverloadSheds(t *testing.T) {
	rels := make([]*securefd.Relation, tenantClients)
	wants := make([][]relation.FD, tenantClients)
	for i := range rels {
		rels[i] = securefd.GenerateRND(4, 24, int64(5+3*i))
		wants[i] = referenceFDs(t, rels[i])
	}

	// No storage faults here: isolate the shedding path. MaxInflight 2
	// against 4 clients × pool 2 guarantees contention; the per-op latency
	// keeps requests in flight long enough to actually overlap.
	srv := transport.NewServer(store.WithLatency(store.NewServer(), 200*time.Microsecond))
	srv.SetSessionLimits(store.SessionLimits{MaxInflight: 2})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = srv.Serve(l) }()
	t.Cleanup(func() { l.Close() })
	addr := l.Addr().String()

	// Generous budget, small backoffs: shed-and-retry is the expected
	// steady state under overload, not an exceptional path.
	policy := store.RetryPolicy{
		MaxAttempts:    50,
		InitialBackoff: time.Millisecond,
		MaxBackoff:     20 * time.Millisecond,
		Seed:           3,
	}
	var wg sync.WaitGroup
	errs := make([]error, tenantClients)
	got := make([][]relation.FD, tenantClients)
	for i := 0; i < tenantClients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			db := fmt.Sprintf("tenant-%d", i%tenantDatabases)
			got[i], errs[i] = tenantDiscover(addr, db, rels[i], policy)
		}(i)
	}
	wg.Wait()
	for i := 0; i < tenantClients; i++ {
		if errs[i] != nil {
			t.Errorf("client %d under overload: %v", i, errs[i])
			continue
		}
		if !relation.FDSetEqual(got[i], wants[i]) {
			t.Errorf("client %d FDs under overload = %v, want %v", i, got[i], wants[i])
		}
	}
	if shed := srv.Sessions().Shed(); shed == 0 {
		t.Error("overload run shed nothing; MaxInflight never bit")
	} else {
		t.Logf("overload run: %d requests shed and retried", shed)
	}
}

// TestMultiTenantOverloadTypedError: shed work surfaces to a non-retrying
// client as the typed, retryable store.ErrOverloaded — never as a silent
// failure or a wrong result. A per-session rate limit with burst 1 makes the
// second back-to-back call shed deterministically.
func TestMultiTenantOverloadTypedError(t *testing.T) {
	srv := transport.NewServer(store.NewServer())
	srv.SetSessionLimits(store.SessionLimits{RatePerSec: 1, Burst: 1})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = srv.Serve(l) }()
	t.Cleanup(func() { l.Close() })

	cfg := chaosClientConfig()
	cfg.Database = "tenant-0"
	c, err := transport.DialWith(l.Addr().String(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.CreateArray("arr", 1); err != nil {
		t.Fatalf("first call within burst: %v", err)
	}
	_, err = c.ArrayLen("arr")
	if !errors.Is(err, store.ErrOverloaded) {
		t.Fatalf("second call: err = %v, want store.ErrOverloaded", err)
	}
	// And it is exactly the class WithRetry would ride out.
	if !store.DefaultRetryable(err) {
		t.Errorf("shed error not classified retryable: %v", err)
	}
}
