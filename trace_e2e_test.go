package oblivfd

// End-to-end acceptance check for the distributed-tracing subsystem: a
// discovery run against a replicated 2-server pair over real TCP must yield
// a merged span set in which a lattice-level span causally contains the
// client's transport RPC spans, which contain the primary's dispatch and
// WAL-append spans and its per-peer replication shipments, while the
// replica records the matching apply spans. The per-layer properties live
// in internal/otrace (ring, IDs), internal/transport (constant-size header,
// TraceDump), internal/store (ship/apply spans); this is the composition
// check that the halves actually join into one causal tree.

import (
	"net"
	"strings"
	"testing"
	"time"

	"github.com/oblivfd/oblivfd/internal/otrace"
	"github.com/oblivfd/oblivfd/internal/store"
	"github.com/oblivfd/oblivfd/internal/transport"
	"github.com/oblivfd/oblivfd/securefd"
)

// tracedNode is one member of the traced replicated pair.
type tracedNode struct {
	addr string
	otr  *otrace.Tracer
}

// tracedPair boots a primary and one replica over TCP, each fully
// instrumented the way fdserver wires a process tracer: store, replication,
// and RPC dispatch all share it.
func tracedPair(t *testing.T) []*tracedNode {
	t.Helper()
	listeners := make([]net.Listener, 2)
	addrs := make([]string, 2)
	for i := range listeners {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatalf("listen: %v", err)
		}
		listeners[i] = l
		addrs[i] = l.Addr().String()
	}
	nodes := make([]*tracedNode, 2)
	for i := range nodes {
		otr := otrace.New(otrace.Config{
			Service:     "fdserver-" + string(rune('0'+i)),
			Capacity:    1 << 16,
			SampleEvery: 1,
		})
		// Shipments carry the primary's span context, as in fdserver.
		dial := func(addr string) (store.ReplicaConn, error) {
			return transport.DialWith(addr, transport.ClientConfig{
				DialTimeout: time.Second, Redials: -1, Trace: otr,
			})
		}
		d, err := store.OpenDir(t.TempDir(), store.DurableOptions{Trace: otr})
		if err != nil {
			t.Fatal(err)
		}
		var peers []string
		for j, a := range addrs {
			if j != i {
				peers = append(peers, a)
			}
		}
		rep, err := store.Replicated(d, store.ReplicationConfig{
			Primary:     i == 0,
			Peers:       peers,
			RedialEvery: 1,
			Dial:        dial,
			Trace:       otr,
		})
		if err != nil {
			t.Fatal(err)
		}
		ts := transport.NewServer(rep)
		ts.SetReplicator(rep)
		ts.SetTracer(otr)
		go func(l net.Listener) { _ = ts.Serve(l) }(listeners[i])
		nodes[i] = &tracedNode{addr: addrs[i], otr: otr}
		t.Cleanup(func() { ts.Shutdown(0); rep.Close() })
	}
	return nodes
}

func TestDistributedTraceCausalTree(t *testing.T) {
	nodes := tracedPair(t)
	client := otrace.New(otrace.Config{
		Service: "fddiscover", Capacity: 1 << 16, SampleEvery: 1,
	})
	cfg := securefd.DefaultClientConfig()
	cfg.DialTimeout = time.Second
	cfg.Trace = client
	fo, err := securefd.DialTCPFailover([]string{nodes[0].addr, nodes[1].addr}, 1, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer fo.Close()

	// Workers: 1 keeps the whole traversal on the discover goroutine, where
	// the lattice-level bindings parent every RPC the level issues.
	db, err := securefd.Outsource(fo, crashRelation(t), securefd.Options{
		Protocol: securefd.ProtocolSort,
		Workers:  1,
		MaxLHS:   2,
		Trace:    client,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if _, err := db.Discover(); err != nil {
		t.Fatal(err)
	}

	// Merge exactly as fddiscover -trace-out does: local records plus every
	// reachable server's ring, filtered to the client's trace IDs.
	recs := client.Records()
	clientTraces := map[string]bool{}
	for _, r := range recs {
		clientTraces[r.Trace] = true
	}
	remote, err := fo.TraceDump("")
	if err != nil {
		t.Fatalf("TraceDump: %v", err)
	}
	for _, r := range remote {
		if clientTraces[r.Trace] {
			recs = append(recs, r)
		}
	}

	spans := map[string]otrace.Record{}
	for _, r := range recs {
		spans[r.Span] = r
	}
	// ancestor walks the parent chain looking for a span whose name has the
	// given prefix, the "causally contains" relation of the acceptance
	// criterion.
	ancestor := func(r otrace.Record, prefix string) (otrace.Record, bool) {
		for p, ok := spans[r.Parent]; ok; p, ok = spans[p.Parent] {
			if strings.HasPrefix(p.Name, prefix) {
				return p, true
			}
		}
		return otrace.Record{}, false
	}

	var rpcUnderLevel, serverUnderRPC, walUnderServer, shipUnderLevel int
	shipPeers := map[string]bool{}
	applySpans := 0
	for _, r := range recs {
		switch {
		case strings.HasPrefix(r.Name, "rpc/"):
			if _, ok := ancestor(r, "lattice/level-"); ok {
				rpcUnderLevel++
			}
		case strings.HasPrefix(r.Name, "server/"):
			if _, ok := ancestor(r, "rpc/"); ok {
				serverUnderRPC++
			}
		case r.Name == "wal/append":
			if _, ok := ancestor(r, "server/"); ok {
				walUnderServer++
			}
		case strings.HasPrefix(r.Name, "repl/ship:"):
			shipPeers[strings.TrimPrefix(r.Name, "repl/ship:")] = true
			if _, ok := ancestor(r, "lattice/level-"); ok {
				shipUnderLevel++
			}
		case r.Name == "repl/apply":
			if _, ok := ancestor(r, "repl/ship:"); ok {
				applySpans++
			}
		}
	}
	if rpcUnderLevel == 0 {
		t.Error("no transport RPC span is contained in a lattice-level span")
	}
	if serverUnderRPC == 0 {
		t.Error("no server dispatch span is contained in a client RPC span")
	}
	if walUnderServer == 0 {
		t.Error("no WAL-append span is contained in a server dispatch span")
	}
	if shipUnderLevel == 0 {
		t.Error("no replication-ship span is contained in a lattice-level span")
	}
	if !shipPeers[nodes[1].addr] {
		t.Errorf("ship spans name peers %v, want %s", shipPeers, nodes[1].addr)
	}
	if applySpans == 0 {
		t.Error("the replica recorded no repl/apply spans contained in a shipment span")
	}
	if t.Failed() {
		byName := map[string]int{}
		for _, r := range recs {
			byName[r.Name]++
		}
		t.Logf("span census: %v", byName)
	}
}
