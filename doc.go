// Package oblivfd reproduces "Secure and Practical Functional Dependency
// Discovery in Outsourced Databases" (ICDE 2024) as a production-quality Go
// library.
//
// Import github.com/oblivfd/oblivfd/securefd for the public API. This root
// package holds only the repository-level benchmarks (bench_test.go), one
// per table and figure of the paper's evaluation; see DESIGN.md for the
// system inventory and EXPERIMENTS.md for reproduction results.
package oblivfd
