package oblivfd

// Tamper-injection harness for the integrity subsystem: corrupt ciphertexts
// at seeded read offsets mid-discovery — in-process and through the real TCP
// transport — and require that every corruption is either detected as
// ErrIntegrity or provably harmless (the run still produces the exact
// plaintext-oracle FD set). The invariant under test is *zero silent wrong
// results*: no seeded corruption, at any offset, in any engine, may ever
// complete discovery with a wrong FD set. Per-layer properties (AEAD
// rejection, ORAM freshness tags, WAL/snapshot framing) live in
// internal/crypto, internal/oram, and internal/store; this file checks that
// they compose end to end.

import (
	"errors"
	"net"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/oblivfd/oblivfd/internal/baseline"
	"github.com/oblivfd/oblivfd/internal/relation"
	"github.com/oblivfd/oblivfd/internal/store"
	"github.com/oblivfd/oblivfd/internal/transport"
	"github.com/oblivfd/oblivfd/securefd"
)

// tamperConfigs covers all three secure engines; the ORAM engines run over
// the linear ORAM (batch cell reads) and or-oram additionally over PathORAM
// (tree path reads), so both read shapes see corruption.
var tamperConfigs = []struct {
	name string
	opts securefd.Options
}{
	{"sort", securefd.Options{Protocol: securefd.ProtocolSort}},
	{"or-oram-linear", securefd.Options{Protocol: securefd.ProtocolORAM, ORAM: securefd.ORAMLinear}},
	{"or-oram-path", securefd.Options{Protocol: securefd.ProtocolORAM, ORAM: securefd.ORAMPath}},
	{"ex-oram-linear", securefd.Options{Protocol: securefd.ProtocolDynamicORAM, ORAM: securefd.ORAMLinear}},
}

// readCounter counts successful payload reads so tamper points can be placed
// deterministically: the storage call sequence of a discovery run is a pure
// function of the relation and options, so a clean run's read count maps
// corruption offsets onto every phase of a tampered run.
type readCounter struct {
	store.Service
	reads int64
}

func (r *readCounter) ReadCells(name string, idx []int64) ([][]byte, error) {
	cts, err := r.Service.ReadCells(name, idx)
	if err == nil {
		r.reads++
	}
	return cts, err
}

func (r *readCounter) ReadPath(name string, leaf uint32) ([][]byte, error) {
	cts, err := r.Service.ReadPath(name, leaf)
	if err == nil {
		r.reads++
	}
	return cts, err
}

// cleanTamperRun discovers without corruption, anchors the result against
// the plaintext oracle, and returns the oracle FD set plus the total number
// of successful reads (the tamper offset space).
func cleanTamperRun(t *testing.T, opts securefd.Options) ([]relation.FD, int64) {
	t.Helper()
	rc := &readCounter{Service: securefd.NewServer()}
	db, err := securefd.Outsource(rc, crashRelation(t), opts)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	report, err := db.Discover()
	if err != nil {
		t.Fatal(err)
	}
	want := baseline.MinimalFDs(crashRelation(t))
	if !relation.FDSetEqual(report.Minimal, want) {
		t.Fatalf("clean run FDs = %v, want oracle %v", report.Minimal, want)
	}
	if rc.reads == 0 {
		t.Fatal("clean run issued no reads; harness cannot place tamper points")
	}
	return want, rc.reads
}

// tamperOffsets spreads deterministic one-shot corruption points across the
// whole run: the first read (setup/upload edge), the last, and three interior
// points.
func tamperOffsets(n int64) []int64 {
	cand := []int64{1, n / 4, n / 2, 3 * n / 4, n}
	seen := map[int64]bool{}
	var out []int64
	for _, k := range cand {
		if k >= 1 && !seen[k] {
			seen[k] = true
			out = append(out, k)
		}
	}
	return out
}

// tamperedDiscover runs one full outsource+discover against svc, returning
// the report (nil on error) and the terminal error. Corruption during upload
// or engine construction surfaces from Outsource; mid-run corruption from
// Discover.
func tamperedDiscover(t *testing.T, svc securefd.Service, opts securefd.Options) (*securefd.Report, error) {
	t.Helper()
	db, err := securefd.Outsource(svc, crashRelation(t), opts)
	if err != nil {
		return nil, err
	}
	defer db.Close()
	return db.Discover()
}

// TestTamperBitFlipDetected: a single flipped bit in any read payload — any
// engine, any offset — must abort discovery with ErrIntegrity. A flipped
// ciphertext, nonce, or tag byte always fails GCM authentication at the
// client, so unlike the swap case there is no harmless outcome to accept.
func TestTamperBitFlipDetected(t *testing.T) {
	for _, tc := range tamperConfigs {
		t.Run(tc.name, func(t *testing.T) {
			_, n := cleanTamperRun(t, tc.opts)
			for _, k := range tamperOffsets(n) {
				fs := securefd.WithFaults(securefd.NewServer(), securefd.FaultConfig{
					Seed:              42,
					CorruptAfterReads: k,
				})
				_, err := tamperedDiscover(t, fs, tc.opts)
				if fs.Corruptions() == 0 {
					t.Fatalf("flip@%d/%d: schedule never fired (err = %v)", k, n, err)
				}
				if !errors.Is(err, securefd.ErrIntegrity) {
					t.Errorf("flip@%d/%d: err = %v, want errors.Is(ErrIntegrity)", k, n, err)
				}
			}
		})
	}
}

// TestTamperBlockSwapNeverSilentlyWrong: swapping two blocks within a read
// batch must be detected (position-bound associated data, slot versions) or
// be provably harmless. The one absorbing case is PathORAM: the client
// collects a path's blocks into the stash as a set, so reordering a path
// read changes nothing — the run must then still match the oracle exactly.
func TestTamperBlockSwapNeverSilentlyWrong(t *testing.T) {
	for _, tc := range tamperConfigs {
		t.Run(tc.name, func(t *testing.T) {
			want, n := cleanTamperRun(t, tc.opts)
			for _, k := range tamperOffsets(n) {
				fs := securefd.WithFaults(securefd.NewServer(), securefd.FaultConfig{
					Seed:              42,
					CorruptAfterReads: k,
					CorruptMode:       store.CorruptSwap,
				})
				report, err := tamperedDiscover(t, fs, tc.opts)
				if fs.Corruptions() == 0 {
					t.Fatalf("swap@%d/%d: schedule never fired (err = %v)", k, n, err)
				}
				switch {
				case err != nil:
					if !errors.Is(err, securefd.ErrIntegrity) {
						t.Errorf("swap@%d/%d: err = %v, want errors.Is(ErrIntegrity)", k, n, err)
					}
				case !relation.FDSetEqual(report.Minimal, want):
					t.Errorf("swap@%d/%d: SILENT WRONG RESULT: FDs = %v, want %v",
						k, n, report.Minimal, want)
				}
			}
		})
	}
}

// TestTamperDetectedOverTCP: the same seeded flip with the fault injector on
// the server side of a real TCP connection. The corrupted ciphertext crosses
// the wire, the client's verification rejects it, and the typed error keeps
// its ErrIntegrity classification end to end.
func TestTamperDetectedOverTCP(t *testing.T) {
	for _, tc := range tamperConfigs {
		t.Run(tc.name, func(t *testing.T) {
			_, n := cleanTamperRun(t, tc.opts)
			backend := securefd.WithFaults(store.NewServer(), securefd.FaultConfig{
				Seed:              42,
				CorruptAfterReads: n / 2,
			})
			l, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				t.Fatal(err)
			}
			go func() { _ = transport.Serve(l, backend) }()
			t.Cleanup(func() { l.Close() })
			svc, err := securefd.DialTCP(l.Addr().String())
			if err != nil {
				t.Fatal(err)
			}
			defer svc.Close()
			_, err = tamperedDiscover(t, svc, tc.opts)
			if !errors.Is(err, securefd.ErrIntegrity) {
				t.Errorf("flip@%d over TCP: err = %v, want errors.Is(ErrIntegrity)", n/2, err)
			}
			if backend.Corruptions() == 0 {
				t.Errorf("flip@%d over TCP: schedule never fired", n/2)
			}
		})
	}
}

// TestTamperErrorNamesLatticePosition: a mid-run verification failure must
// tell the operator where discovery died — the lattice level and attribute
// set being checked — not just that "authentication failed" somewhere.
func TestTamperErrorNamesLatticePosition(t *testing.T) {
	opts := securefd.Options{Protocol: securefd.ProtocolORAM, ORAM: securefd.ORAMLinear}
	_, n := cleanTamperRun(t, opts)
	fs := securefd.WithFaults(securefd.NewServer(), securefd.FaultConfig{
		Seed:              42,
		CorruptAfterReads: n / 2,
	})
	_, err := tamperedDiscover(t, fs, opts)
	if !errors.Is(err, securefd.ErrIntegrity) {
		t.Fatalf("err = %v, want errors.Is(ErrIntegrity)", err)
	}
	if !strings.Contains(err.Error(), "lattice level") {
		t.Errorf("error does not name the lattice position: %v", err)
	}
}

// TestTamperTelemetryCounters: every decryption counts as an integrity check
// and a rejected one as a failure, so an operator watching /metrics sees
// both the steady-state verification volume and the exact moment tampering
// was caught.
func TestTamperTelemetryCounters(t *testing.T) {
	opts := securefd.Options{Protocol: securefd.ProtocolORAM, ORAM: securefd.ORAMLinear}
	_, n := cleanTamperRun(t, opts)
	reg := securefd.NewRegistry()
	opts.Telemetry = reg
	fs := securefd.WithFaults(securefd.NewServer(), securefd.FaultConfig{
		Seed:              42,
		CorruptAfterReads: n / 2,
		Metrics:           reg,
	})
	_, err := tamperedDiscover(t, fs, opts)
	if !errors.Is(err, securefd.ErrIntegrity) {
		t.Fatalf("err = %v, want errors.Is(ErrIntegrity)", err)
	}
	if checks := reg.Counter("oblivfd_integrity_checks_total").Value(); checks == 0 {
		t.Errorf("integrity_checks_total = 0, want > 0")
	}
	if fails := reg.Counter("oblivfd_integrity_failures_total").Value(); fails == 0 {
		t.Errorf("integrity_failures_total = 0, want >= 1")
	}
	if inj := reg.Counter("oblivfd_corruptions_injected_total").Value(); inj != fs.Corruptions() {
		t.Errorf("corruptions_injected_total = %d, want %d (registry and accessor disagree)",
			inj, fs.Corruptions())
	}
}

// flipByteInFile flips one bit at the file's midpoint.
func flipByteInFile(t *testing.T, path string) {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) == 0 {
		t.Fatalf("%s is empty; nothing to corrupt", path)
	}
	data[len(data)/2] ^= 0x01
	if err := os.WriteFile(path, data, 0o600); err != nil {
		t.Fatal(err)
	}
}

// TestTamperSnapshotDetected: a bit flip in every retained snapshot file
// makes recovery impossible, and OpenDir must say so with
// ErrCorruptSnapshot — which classifies as ErrIntegrity, so the same
// operator alerting catches storage-at-rest tampering and wire tampering.
func TestTamperSnapshotDetected(t *testing.T) {
	dir := t.TempDir()
	srv, err := securefd.OpenDir(dir, securefd.DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	db, err := securefd.Outsource(srv, crashRelation(t), crashOpts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.DiscoverResumable(filepath.Join(dir, "run.ckpt")); err != nil {
		t.Fatal(err)
	}
	db.Close()
	if err := srv.Snapshot(); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	snaps, err := filepath.Glob(filepath.Join(dir, "*.snap"))
	if err != nil || len(snaps) == 0 {
		t.Fatalf("no snapshots in %s (err = %v)", dir, err)
	}
	for _, s := range snaps {
		flipByteInFile(t, s)
	}
	_, err = securefd.OpenDir(dir, securefd.DurableOptions{})
	if !errors.Is(err, securefd.ErrCorruptSnapshot) {
		t.Errorf("open over corrupt snapshots = %v, want ErrCorruptSnapshot", err)
	}
	if !errors.Is(err, securefd.ErrIntegrity) {
		t.Errorf("ErrCorruptSnapshot must classify as ErrIntegrity; got %v", err)
	}
}

// TestTamperWALNeverSilentlyWrong: a bit flip inside a WAL frame breaks its
// CRC, and recovery deliberately treats the unreadable suffix as a torn tail
// — that is indistinguishable, at the storage layer, from a crash mid-write.
// What turns silent truncation into detected tampering is the epoch tag:
// resuming the client checkpoint against the rolled-back server must be
// refused with ErrEpochMismatch (an ErrIntegrity), unless the truncation
// happens to land exactly on the checkpointed state, in which case the
// resumed run must match the oracle exactly. Either way: never a silent
// wrong FD set.
func TestTamperWALNeverSilentlyWrong(t *testing.T) {
	want, meter := cleanRun(t)
	totalWrites := meter.writes
	firstWrites := meter.writesAtEpoch[1]
	if firstWrites == 0 || firstWrites >= totalWrites {
		t.Fatalf("epoch 1 at write %d of %d; cannot place a kill point", firstWrites, totalWrites)
	}

	// Crash the client mid-level so wal.log holds mutations past the
	// epoch-1 snapshot, then flip a bit in that tail.
	dir := t.TempDir()
	ckpt := filepath.Join(dir, "run.ckpt")
	srv, err := securefd.OpenDir(dir, securefd.DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	dying := &dyingSvc{Service: srv, remaining: firstWrites + (totalWrites-firstWrites)/2}
	db, err := securefd.Outsource(dying, crashRelation(t), crashOpts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.DiscoverResumable(ckpt); !errors.Is(err, errClientCrash) {
		t.Fatalf("Discover err = %v, want simulated client crash", err)
	}
	db.Close()
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	flipByteInFile(t, filepath.Join(dir, "wal.log"))

	srv2, err := securefd.OpenDir(dir, securefd.DurableOptions{})
	if err != nil {
		// Mid-stream garbage that still frames correctly is rejected
		// outright; that is detection too.
		if !errors.Is(err, securefd.ErrIntegrity) {
			t.Fatalf("open over corrupt WAL = %v, want errors.Is(ErrIntegrity)", err)
		}
		return
	}
	defer srv2.Close()
	db2, err := securefd.Resume(srv2, ckpt)
	if err != nil {
		if !errors.Is(err, securefd.ErrEpochMismatch) || !errors.Is(err, securefd.ErrIntegrity) {
			t.Fatalf("resume against truncated server = %v, want ErrEpochMismatch (an ErrIntegrity)", err)
		}
		return
	}
	defer db2.Close()
	report, err := db2.Discover()
	if err != nil {
		if !errors.Is(err, securefd.ErrIntegrity) {
			t.Fatalf("resumed discovery = %v, want success or ErrIntegrity", err)
		}
		return
	}
	if !relation.FDSetEqual(report.Minimal, want.Minimal) {
		t.Errorf("SILENT WRONG RESULT after WAL tamper: FDs = %v, want %v", report.Minimal, want.Minimal)
	}
}
