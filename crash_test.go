package oblivfd

// Crash-injection harness for the recovery subsystem: kill the server at
// seeded WAL offsets mid-discovery, kill the client between lattice levels,
// then recover both sides and require the identical FD set and access
// accounting as an uninterrupted run. This is the end-to-end check that the
// WAL + snapshot + checkpoint machinery composes; the per-layer properties
// live in internal/store and internal/core.

import (
	"errors"
	"net"
	"path/filepath"
	"testing"

	"github.com/oblivfd/oblivfd/internal/baseline"
	"github.com/oblivfd/oblivfd/internal/relation"
	"github.com/oblivfd/oblivfd/internal/store"
	"github.com/oblivfd/oblivfd/internal/transport"
	"github.com/oblivfd/oblivfd/securefd"
)

// crashRelation is small enough for ORAMLinear but deep enough to cross
// several lattice levels (several checkpoint epochs).
func crashRelation(t *testing.T) *securefd.Relation {
	t.Helper()
	schema, err := securefd.NewSchema("A", "B", "C", "D")
	if err != nil {
		t.Fatal(err)
	}
	rel, err := securefd.FromRows(schema, []securefd.Row{
		{"a1", "b1", "c1", "d1"},
		{"a1", "b1", "c2", "d1"},
		{"a2", "b2", "c1", "d1"},
		{"a2", "b2", "c3", "d2"},
		{"a3", "b1", "c2", "d2"},
		{"a3", "b1", "c1", "d1"},
		{"a4", "b2", "c3", "d2"},
		{"a4", "b2", "c2", "d1"},
	})
	if err != nil {
		t.Fatal(err)
	}
	return rel
}

var crashOpts = securefd.Options{Protocol: securefd.ProtocolORAM, ORAM: securefd.ORAMLinear}

// meterSvc wraps the durable server to observe where, in WAL-append and
// client-write counts, each checkpoint epoch lands. The crash tests use a
// clean metered run to place kill points that are guaranteed to fall after
// the first checkpoint (a run that never checkpointed has nothing to resume).
type meterSvc struct {
	store.Service
	srv            *securefd.DurableServer
	writes         int64
	appendsAtEpoch map[int64]int64
	writesAtEpoch  map[int64]int64
}

func newMeter(srv *securefd.DurableServer) *meterSvc {
	return &meterSvc{
		Service:        srv,
		srv:            srv,
		appendsAtEpoch: make(map[int64]int64),
		writesAtEpoch:  make(map[int64]int64),
	}
}

func (m *meterSvc) WriteCells(name string, idx []int64, cts [][]byte) error {
	m.writes++
	return m.Service.WriteCells(name, idx, cts)
}

func (m *meterSvc) Checkpoint(epoch int64) error {
	if err := m.Service.Checkpoint(epoch); err != nil {
		return err
	}
	m.appendsAtEpoch[epoch] = m.srv.WALAppends()
	m.writesAtEpoch[epoch] = m.writes
	return nil
}

// cleanRun performs one uninterrupted resumable discovery over a durable
// server and returns the baseline report plus the meter.
func cleanRun(t *testing.T) (*securefd.Report, *meterSvc) {
	t.Helper()
	dir := t.TempDir()
	srv, err := securefd.OpenDir(dir, securefd.DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	meter := newMeter(srv)
	db, err := securefd.Outsource(meter, crashRelation(t), crashOpts)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	report, err := db.DiscoverResumable(filepath.Join(dir, "run.ckpt"))
	if err != nil {
		t.Fatal(err)
	}
	// Anchor the baseline against the plaintext oracle.
	if want := baseline.MinimalFDs(crashRelation(t)); !relation.FDSetEqual(report.Minimal, want) {
		t.Fatalf("clean run FDs = %v, want oracle %v", report.Minimal, want)
	}
	return report, meter
}

// TestCrashRecoveryServerKill crashes the server at three seeded WAL offsets
// mid-discovery, restarts it from the data directory rolled back to the
// checkpoint's epoch, resumes the client, and requires the exact baseline FD
// set and access accounting.
func TestCrashRecoveryServerKill(t *testing.T) {
	want, meter := cleanRun(t)
	total := meter.srv.WALAppends()
	first := meter.appendsAtEpoch[1]
	if first == 0 || first >= total {
		t.Fatalf("epoch 1 at append %d of %d; cannot place kill points", first, total)
	}

	// Three kill points strictly after the first checkpoint.
	kills := []int64{
		first + (total-first)/4,
		first + (total-first)/2,
		first + 3*(total-first)/4,
	}
	for _, kill := range kills {
		dir := t.TempDir()
		ckpt := filepath.Join(dir, "run.ckpt")
		srv, err := securefd.OpenDir(dir, securefd.DurableOptions{KillAfterAppends: kill})
		if err != nil {
			t.Fatal(err)
		}
		db, err := securefd.Outsource(srv, crashRelation(t), crashOpts)
		if err != nil {
			t.Fatalf("kill@%d: Outsource hit the kill point during upload: %v", kill, err)
		}
		_, err = db.DiscoverResumable(ckpt)
		if !errors.Is(err, securefd.ErrServerKilled) {
			t.Fatalf("kill@%d: Discover err = %v, want ErrServerKilled", kill, err)
		}
		db.Close()
		srv.Close() // killed; error is expected and irrelevant

		// The server restarts from disk, rolled back to the epoch the
		// client's checkpoint names; the client resumes against it.
		db2, srv2, err := securefd.ResumeFromDir(dir, ckpt, securefd.DurableOptions{})
		if err != nil {
			t.Fatalf("kill@%d: ResumeFromDir: %v", kill, err)
		}
		report, err := db2.DiscoverResumable(ckpt)
		if err != nil {
			t.Fatalf("kill@%d: resumed discovery: %v", kill, err)
		}
		if !relation.FDSetEqual(report.Minimal, want.Minimal) {
			t.Errorf("kill@%d: resumed FDs = %v, want %v", kill, report.Minimal, want.Minimal)
		}
		if report.SetsMaterialized != want.SetsMaterialized || report.Checks != want.Checks {
			t.Errorf("kill@%d: accounting = %d sets/%d checks, want %d/%d",
				kill, report.SetsMaterialized, report.Checks, want.SetsMaterialized, want.Checks)
		}
		db2.Close()
		if err := srv2.Snapshot(); err != nil {
			t.Errorf("kill@%d: final snapshot: %v", kill, err)
		}
		if err := srv2.Close(); err != nil {
			t.Errorf("kill@%d: close: %v", kill, err)
		}
	}
}

// dyingSvc simulates a client crash: the Nth WriteCells is forwarded to the
// server (the mutation lands, as it would if the process died after the
// server applied the op but before the ack was processed) and then reported
// as a failure, aborting the discovery loop.
type dyingSvc struct {
	store.Service
	remaining int64
}

var errClientCrash = errors.New("simulated client crash")

func (d *dyingSvc) WriteCells(name string, idx []int64, cts [][]byte) error {
	if err := d.Service.WriteCells(name, idx, cts); err != nil {
		return err
	}
	d.remaining--
	if d.remaining <= 0 {
		return errClientCrash
	}
	return nil
}

// TestCrashRecoveryClientKill crashes the client mid-level (after its write
// already reached the server), shows that a naive resume against the drifted
// server is refused with ErrEpochMismatch, then recovers by rolling the
// server back to the checkpoint's epoch and requires the baseline result.
func TestCrashRecoveryClientKill(t *testing.T) {
	want, meter := cleanRun(t)
	totalWrites := meter.writes
	firstWrites := meter.writesAtEpoch[1]
	if firstWrites == 0 || firstWrites >= totalWrites {
		t.Fatalf("epoch 1 at write %d of %d; cannot place a client kill point", firstWrites, totalWrites)
	}

	dir := t.TempDir()
	ckpt := filepath.Join(dir, "run.ckpt")
	srv, err := securefd.OpenDir(dir, securefd.DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Die on a write strictly after the first checkpoint so the server has
	// drifted past the epoch when the client comes back.
	dying := &dyingSvc{Service: srv, remaining: firstWrites + (totalWrites-firstWrites)/2}
	db, err := securefd.Outsource(dying, crashRelation(t), crashOpts)
	if err != nil {
		t.Fatal(err)
	}
	_, err = db.DiscoverResumable(ckpt)
	if !errors.Is(err, errClientCrash) {
		t.Fatalf("Discover err = %v, want simulated client crash", err)
	}
	db.Close()

	// The server applied mutations after the checkpointed epoch, so resuming
	// the checkpoint's ORAM client state against it must be refused.
	if _, err := securefd.Resume(srv, ckpt); !errors.Is(err, securefd.ErrEpochMismatch) {
		t.Fatalf("Resume against drifted server = %v, want ErrEpochMismatch", err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}

	// Correct recovery: roll the server back to the checkpoint's epoch.
	db2, srv2, err := securefd.ResumeFromDir(dir, ckpt, securefd.DurableOptions{})
	if err != nil {
		t.Fatalf("ResumeFromDir: %v", err)
	}
	defer srv2.Close()
	report, err := db2.Discover()
	if err != nil {
		t.Fatalf("resumed discovery: %v", err)
	}
	defer db2.Close()
	if !relation.FDSetEqual(report.Minimal, want.Minimal) {
		t.Errorf("resumed FDs = %v, want %v", report.Minimal, want.Minimal)
	}
	if report.SetsMaterialized != want.SetsMaterialized || report.Checks != want.Checks {
		t.Errorf("accounting = %d sets/%d checks, want %d/%d",
			report.SetsMaterialized, report.Checks, want.SetsMaterialized, want.Checks)
	}
}

// TestCrashRecoveryTwoTenants: a durable multi-tenant server is killed and
// restarted; OpenDir must restore every tenant's namespace — objects, cell
// contents, recovery epoch, and mutations-since-epoch counter — from the WAL
// alone and again from a snapshot, so each tenant's resume-consistency check
// stays sound independently of its neighbors.
func TestCrashRecoveryTwoTenants(t *testing.T) {
	dir := t.TempDir()
	srv, err := securefd.OpenDir(dir, securefd.DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	alpha := securefd.Namespaced(srv, "alpha")
	beta := securefd.Namespaced(srv, "beta")

	if err := alpha.CreateArray("arr", 2); err != nil {
		t.Fatal(err)
	}
	if err := alpha.WriteCells("arr", []int64{0, 1}, [][]byte{[]byte("a0"), []byte("a1")}); err != nil {
		t.Fatal(err)
	}
	if err := alpha.Checkpoint(3); err != nil {
		t.Fatal(err)
	}
	if err := beta.CreateArray("arr", 1); err != nil {
		t.Fatal(err)
	}
	if err := beta.Checkpoint(7); err != nil {
		t.Fatal(err)
	}
	// Beta drifts past its checkpoint; alpha stays clean. The restarted
	// server must reproduce exactly this asymmetry.
	if err := beta.WriteCells("arr", []int64{0}, [][]byte{[]byte("b0")}); err != nil {
		t.Fatal(err)
	}
	// Close without a snapshot: recovery replays the WAL, including the
	// per-namespace checkpoint records (a hard kill leaves the same state —
	// the WAL fsyncs every record by default).
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}

	checkTenants := func(srv *securefd.DurableServer, phase string) {
		t.Helper()
		alpha := securefd.Namespaced(srv, "alpha")
		beta := securefd.Namespaced(srv, "beta")
		stA, err := alpha.Stats()
		if err != nil {
			t.Fatal(err)
		}
		if stA.Epoch != 3 || stA.MutationsSinceEpoch != 0 || stA.Objects != 1 {
			t.Errorf("%s: alpha = epoch %d, dirty %d, objects %d; want 3/0/1",
				phase, stA.Epoch, stA.MutationsSinceEpoch, stA.Objects)
		}
		stB, err := beta.Stats()
		if err != nil {
			t.Fatal(err)
		}
		if stB.Epoch != 7 || stB.MutationsSinceEpoch == 0 {
			t.Errorf("%s: beta = epoch %d, dirty %d; want epoch 7 with drift",
				phase, stB.Epoch, stB.MutationsSinceEpoch)
		}
		got, err := alpha.ReadCells("arr", []int64{0, 1})
		if err != nil {
			t.Fatal(err)
		}
		if string(got[0]) != "a0" || string(got[1]) != "a1" {
			t.Errorf("%s: alpha cells = %q, %q; want a0, a1", phase, got[0], got[1])
		}
		if got, err := beta.ReadCells("arr", []int64{0}); err != nil || string(got[0]) != "b0" {
			t.Errorf("%s: beta cell = %q, %v; want b0", phase, got, err)
		}
	}

	srv2, err := securefd.OpenDir(dir, securefd.DurableOptions{})
	if err != nil {
		t.Fatalf("restart from WAL: %v", err)
	}
	checkTenants(srv2, "wal replay")
	// Absorb everything into a snapshot and restart again: the marks must
	// survive the snapshot format too, not just WAL replay.
	if err := srv2.Snapshot(); err != nil {
		t.Fatal(err)
	}
	if err := srv2.Close(); err != nil {
		t.Fatal(err)
	}
	srv3, err := securefd.OpenDir(dir, securefd.DurableOptions{})
	if err != nil {
		t.Fatalf("restart from snapshot: %v", err)
	}
	defer srv3.Close()
	checkTenants(srv3, "snapshot")
}

// TestCrashRecoveryOverTCP runs the server-kill scenario with the durable
// server behind the real TCP transport: the typed kill/corruption errors must
// survive the wire and the recovered run must still match.
func TestCrashRecoveryOverTCP(t *testing.T) {
	want, meter := cleanRun(t)
	total := meter.srv.WALAppends()
	first := meter.appendsAtEpoch[1]
	kill := first + (total-first)/2

	dir := t.TempDir()
	ckpt := filepath.Join(dir, "run.ckpt")
	srv, err := securefd.OpenDir(dir, securefd.DurableOptions{KillAfterAppends: kill})
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = transport.Serve(l, srv) }()
	t.Cleanup(func() { l.Close() })
	svc, err := securefd.DialTCP(l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	db, err := securefd.Outsource(svc, crashRelation(t), crashOpts)
	if err != nil {
		t.Fatal(err)
	}
	_, err = db.DiscoverResumable(ckpt)
	if !errors.Is(err, securefd.ErrServerKilled) {
		t.Fatalf("Discover over TCP err = %v, want ErrServerKilled", err)
	}
	db.Close()
	svc.Close()
	srv.Close()

	db2, srv2, err := securefd.ResumeFromDir(dir, ckpt, securefd.DurableOptions{})
	if err != nil {
		t.Fatalf("ResumeFromDir: %v", err)
	}
	defer srv2.Close()
	report, err := db2.Discover()
	if err != nil {
		t.Fatalf("resumed discovery: %v", err)
	}
	defer db2.Close()
	if !relation.FDSetEqual(report.Minimal, want.Minimal) {
		t.Errorf("FDs after TCP crash recovery = %v, want %v", report.Minimal, want.Minimal)
	}
}
