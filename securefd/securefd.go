// Package securefd is the public API of oblivfd, a Go implementation of
// "Secure and Practical Functional Dependency Discovery in Outsourced
// Databases" (ICDE 2024).
//
// A client outsources a cell-encrypted relation to an untrusted server and
// then discovers the relation's functional dependencies without revealing
// anything to the server beyond the database size and the FDs themselves —
// even against a persistent adversary watching every byte and every access.
//
// Basic use:
//
//	server := securefd.NewServer()                 // or DialTCP(addr)
//	db, err := securefd.Outsource(server, rel, securefd.Options{
//		Protocol: securefd.ProtocolSort,
//	})
//	report, err := db.Discover()
//	for _, fd := range report.Minimal {
//		fmt.Println(fd.Format(rel.Schema()))
//	}
//
// Three secure protocols are available (see the paper's §IV–V):
//
//   - ProtocolSort — oblivious bitonic sorting; static databases, O(1)
//     client memory, parallelizable (Workers).
//   - ProtocolORAM — PathORAM-based; static databases plus insertions.
//   - ProtocolDynamicORAM — extended ORAM layout; full insert/delete
//     support with polylogarithmic per-operation cost.
//
// Three reference engines exist for benchmarking: ProtocolPlaintext (no
// protection at all), ProtocolEnclave (the SGX-style deployment simulation
// of §VII-D), and ProtocolDeterministic (the frequency-revealing security
// level of the paper's predecessor — see its constant's warning).
package securefd

import (
	"errors"
	"fmt"
	"io"
	"net"
	"sync/atomic"
	"time"

	"github.com/oblivfd/oblivfd/internal/core"
	"github.com/oblivfd/oblivfd/internal/crypto"
	"github.com/oblivfd/oblivfd/internal/enclave"
	"github.com/oblivfd/oblivfd/internal/obsort"
	"github.com/oblivfd/oblivfd/internal/oram"
	"github.com/oblivfd/oblivfd/internal/otrace"
	"github.com/oblivfd/oblivfd/internal/relation"
	"github.com/oblivfd/oblivfd/internal/store"
	"github.com/oblivfd/oblivfd/internal/telemetry"
	"github.com/oblivfd/oblivfd/internal/trace"
	"github.com/oblivfd/oblivfd/internal/transport"
)

// Re-exported data-model types. External code names them through this
// package; they are the same types used throughout the implementation.
type (
	// Schema describes a relation's attributes.
	Schema = relation.Schema
	// Relation is a plaintext table (client-side only).
	Relation = relation.Relation
	// Row is one record's values.
	Row = relation.Row
	// AttrSet is a set of attribute indices.
	AttrSet = relation.AttrSet
	// FD is a functional dependency LHS → RHS.
	FD = relation.FD
	// Service is the server-side storage surface (in-process or TCP).
	Service = store.Service
	// Server is the in-process reference server.
	Server = store.Server
	// TraceEvent is one server-visible storage operation — an element of
	// the persistent adversary's view.
	TraceEvent = trace.Event
	// TraceShape is a normalized trace for obliviousness comparisons.
	TraceShape = trace.Shape
)

// ShapeOf normalizes a recorded trace for comparison: ORAM leaf indices
// (uniformly random, data-independent) are stripped; everything else — the
// exact operation sequence, objects, indices, and ciphertext sizes — is
// kept. Two same-size databases must yield equal shapes under any secure
// protocol (Definition 2 of the paper); see examples/adversary_view.
func ShapeOf(events []TraceEvent) TraceShape { return trace.ShapeOf(events) }

// NewSchema builds a schema from unique attribute names.
func NewSchema(names ...string) (*Schema, error) { return relation.NewSchema(names...) }

// NewRelation builds an empty relation over a schema; use Relation.Append.
func NewRelation(schema *Schema) *Relation { return relation.New(schema) }

// FromRows builds a relation from rows, validating widths.
func FromRows(schema *Schema, rows []Row) (*Relation, error) {
	return relation.FromRows(schema, rows)
}

// NewAttrSet builds an attribute set from indices.
func NewAttrSet(attrs ...int) AttrSet { return relation.NewAttrSet(attrs...) }

// NewServer creates an in-process server (client and server in one binary;
// useful for tests, benchmarks, and enclave-style deployments).
func NewServer() *Server { return store.NewServer() }

// WithLatency wraps a service so every storage operation takes at least rtt
// longer, modeling the client↔server network of a real deployment.
// Concurrent operations are delayed independently, which is what the
// sorting protocol's parallelism overlaps.
func WithLatency(svc Service, rtt time.Duration) Service { return store.WithLatency(svc, rtt) }

// ServeTCP exposes a server on a listener until the listener closes; run it
// in a goroutine. The fdserver command wraps this.
func ServeTCP(l net.Listener, svc Service) error { return transport.Serve(l, svc) }

// DialTCP connects to a remote server started with ServeTCP and returns a
// Service usable with Outsource. The connection is self-healing: calls
// carry deadlines and a dropped connection is re-dialed with backoff.
func DialTCP(addr string) (*transport.Client, error) { return transport.Dial(addr) }

// Fault tolerance. Long oblivious runs make millions of storage calls, so
// a single transient failure must not cost the whole run. The pieces
// compose as decorators around a Service:
//
//	svc, _ := securefd.DialTCPWith(addr, securefd.DefaultClientConfig())
//	db, _ := securefd.Outsource(securefd.WithRetry(svc, securefd.RetryPolicy{}), rel, opts)
//
// Retrying a storage operation is safe for the security guarantee: every
// operation is idempotent or reconciled (see store.WithRetry), and a
// retried access adds one re-encrypted access to the server's view —
// indistinguishable from a slightly longer run, so the leakage profile
// L(DB) = {Size(DB), FD(DB)} is unchanged.
type (
	// FaultConfig configures seeded fault injection (WithFaults).
	FaultConfig = store.FaultConfig
	// RetryPolicy configures retry/backoff (WithRetry).
	RetryPolicy = store.RetryPolicy
	// ClientConfig tunes the self-healing TCP client (DialTCPWith).
	ClientConfig = transport.ClientConfig
	// FaultService is a fault-injecting Service decorator.
	FaultService = store.FaultService
	// RetryService is a retrying Service decorator.
	RetryService = store.RetryService
)

// Typed failures a client may observe; each survives the TCP transport, so
// errors.Is works on the client side of a remote call.
var (
	// ErrTransient marks an injected or otherwise momentary storage
	// failure; WithRetry retries it.
	ErrTransient = store.ErrTransient
	// ErrUnavailable marks a connection that could not be established or
	// re-established within the redial budget.
	ErrUnavailable = store.ErrUnavailable
	// ErrIntegrity marks data the client refused because verification
	// failed: a tampered or replayed ciphertext, a stale ORAM block, a
	// corrupt WAL frame or snapshot, or a checkpoint/server epoch mismatch.
	// It is never retried — re-reading tampered data returns the same
	// wrong bytes — and discovery aborts with the lattice level and
	// attribute set that tripped the check.
	ErrIntegrity = store.ErrIntegrity
	// ErrOverloaded marks a request shed by a multi-tenant server's
	// admission control (session budget, in-flight budget, or rate limit).
	// The work was never executed, so WithRetry retries it safely.
	ErrOverloaded = store.ErrOverloaded
	// ErrUnauthorized marks a rejected session handshake (bad token or
	// invalid database name). It is never retried.
	ErrUnauthorized = store.ErrUnauthorized
	// ErrNotPrimary marks an operation sent to a replica: only the primary
	// serves clients. DialTCPFailover treats it as "rotate to the primary".
	ErrNotPrimary = store.ErrNotPrimary
	// ErrFenced marks a server deposed by a newer primary epoch. It is
	// fatal at that server; DialTCPFailover re-probes for the successor.
	ErrFenced = store.ErrFenced
	// ErrDiskFull marks a write shed because the server's disk is full and
	// it has degraded to read-only mode. Nothing was durably applied, and
	// the condition clears when space frees, so WithRetry retries it with
	// backoff like ErrOverloaded.
	ErrDiskFull = store.ErrDiskFull
)

// WithFaults wraps a service with seeded, deterministic fault injection:
// transient errors and latency spikes for resilience testing. The schedule
// is a pure function of the seed and call index.
func WithFaults(svc Service, cfg FaultConfig) *store.FaultService { return store.WithFaults(svc, cfg) }

// WithRetry wraps a service so transient failures are retried with
// exponential backoff, deadlines, and a retry budget.
func WithRetry(svc Service, p RetryPolicy) *store.RetryService { return store.WithRetry(svc, p) }

// Telemetry. A Registry collects counters, gauges, latency histograms, and
// phase spans from every instrumented layer it is attached to; it observes
// only operation counts, byte sizes, and wall-clock timings — quantities
// within the protocol's leakage profile L(DB) — and never plaintext or key
// material. One registry may be shared by the storage decorators, the TCP
// client, the engines, and the lattice traversal; fdserver additionally
// serves a registry over HTTP (/metrics, /metrics.json, /debug/pprof/).
// A nil *Registry disables all instrumentation at zero cost.
type Registry = telemetry.Registry

// NewRegistry creates an empty metrics registry.
func NewRegistry() *Registry { return telemetry.New() }

// Distributed tracing. A Tracer records causal spans — 128-bit trace IDs
// with parent/child links — into a bounded in-process ring, and its span
// contexts ride the TCP frames in a fixed-size, always-present header, so
// enabling tracing never changes any frame's length (DESIGN.md §14). Share
// one tracer between Options.Trace and ClientConfig.Trace to get a single
// causal tree from lattice level down to the server's WAL. A nil *Tracer
// disables recording at near-zero cost.
type (
	Tracer       = otrace.Tracer
	TracerConfig = otrace.Config
	SpanRecord   = otrace.Record
)

// NewTracer creates a span recorder. The Service field labels this
// process's spans in exported artifacts ("fddiscover", "fdserver", ...).
func NewTracer(cfg TracerConfig) *Tracer { return otrace.New(cfg) }

// WriteChromeTrace renders span records as Chrome trace-event JSON,
// loadable in Perfetto (https://ui.perfetto.dev) or chrome://tracing.
func WriteChromeTrace(w io.Writer, recs []SpanRecord) error {
	return otrace.WriteChrome(w, recs)
}

// WithTelemetry wraps a service so every storage operation records its
// latency, outcome, and payload bytes into the registry. A nil registry
// returns svc unchanged.
func WithTelemetry(svc Service, reg *Registry) Service { return store.WithMetrics(svc, reg) }

// DefaultClientConfig returns the self-healing client defaults.
func DefaultClientConfig() ClientConfig { return transport.DefaultClientConfig() }

// DialTCPWith is DialTCP with explicit timeout/redial tuning.
func DialTCPWith(addr string, cfg ClientConfig) (*transport.Client, error) {
	return transport.DialWith(addr, cfg)
}

// DialTCPPool connects size independent self-healing connections to one
// server, letting concurrent workers issue storage calls in parallel.
func DialTCPPool(addr string, size int, cfg ClientConfig) (*transport.Pool, error) {
	return transport.DialPoolWith(addr, size, cfg)
}

// DialTCPFailover connects a pool of size connections against a *list* of
// replicated fdservers (see fdserver -replicas): calls are served by the
// current primary, and when it dies or is deposed the pool probes the list,
// promotes the freshest replica if no primary answers, and re-issues the
// failed call there. Layer WithRetry on top and an entire server loss looks
// like one more transient fault:
//
//	svc, _ := securefd.DialTCPFailover(addrs, workers, securefd.DefaultClientConfig())
//	db, _ := securefd.Outsource(securefd.WithRetry(svc, securefd.RetryPolicy{}), rel, opts)
func DialTCPFailover(addrs []string, size int, cfg ClientConfig) (*transport.FailoverPool, error) {
	return transport.DialFailover(addrs, size, cfg)
}

// NewTCPServer wraps a service for serving over TCP with graceful
// shutdown: Shutdown(grace) drains in-flight requests before closing.
func NewTCPServer(svc Service) *transport.Server { return transport.NewServer(svc) }

// Multi-tenancy. One fdserver can host many independent databases: a client
// that sets ClientConfig.Database (and Token, if the server requires one)
// opens a session bound to that namespace, and every storage key it touches
// is transparently prefixed — tenants cannot observe or collide with each
// other's objects. Admission control (SessionLimits) sheds work beyond the
// configured budgets with the retryable ErrOverloaded instead of queuing,
// so an overloaded server degrades gracefully rather than falling over.
// The adversary's view of the multi-tenant server is the union of the
// per-tenant traces plus their interleaving; each tenant's own trace keeps
// the single-tenant leakage profile L(DB) (DESIGN.md §12).
type (
	// SessionLimits configures a multi-tenant server's admission control
	// (Server.SetSessionLimits). The zero value imposes no limits.
	SessionLimits = store.SessionLimits
	// SessionRegistry tracks live sessions and admission counters.
	SessionRegistry = store.SessionRegistry
)

// Namespaced scopes a Service to a database namespace: every object name,
// batch operation, and reveal tag is prefixed with db + "/". An empty db
// returns svc unchanged (the root namespace). The TCP server applies this
// automatically to handshaked sessions; use it directly to host multiple
// tenants on an in-process server.
func Namespaced(svc Service, db string) Service { return store.Namespaced(svc, db) }

// ValidDBName reports whether db is an acceptable database namespace name
// ([A-Za-z0-9._-]+, at most 128 bytes).
func ValidDBName(db string) bool { return store.ValidDBName(db) }

// Protocol selects the attribute-level partition method.
type Protocol int

// Available protocols.
const (
	// ProtocolSort is the oblivious-sorting method (§IV-D): static
	// databases, constant client memory, high parallelism.
	ProtocolSort Protocol = iota
	// ProtocolORAM is the original ORAM method (§IV-C): static databases
	// plus insertions.
	ProtocolORAM
	// ProtocolDynamicORAM is the extended ORAM method (§V): insertions
	// and deletions in O(polylog n) per operation.
	ProtocolDynamicORAM
	// ProtocolPlaintext is the insecure baseline (no encryption, no
	// obliviousness); for benchmarking only.
	ProtocolPlaintext
	// ProtocolEnclave simulates running the sorting protocol inside a
	// server-side secure enclave (§VII-D); for benchmarking only.
	ProtocolEnclave
	// ProtocolDeterministic reproduces the security level of the paper's
	// predecessor (Dong & Wang, ICDE 2017): partitions are computed from
	// deterministic per-cell tags stored on the server. It is nearly as
	// fast as plaintext but LEAKS THE FULL FREQUENCY HISTOGRAM of every
	// attribute — a leakage that frequency-analysis attacks turn into
	// plaintext recovery (the repository's TestFrequencyAttack…
	// demonstrates >99% recovery on skewed data). It exists as the
	// insecure comparator the paper's protocols replace. Never use it
	// for sensitive data.
	ProtocolDeterministic
)

// String names the protocol.
func (p Protocol) String() string {
	switch p {
	case ProtocolSort:
		return "sort"
	case ProtocolORAM:
		return "or-oram"
	case ProtocolDynamicORAM:
		return "ex-oram"
	case ProtocolPlaintext:
		return "plaintext"
	case ProtocolEnclave:
		return "enclave"
	case ProtocolDeterministic:
		return "deterministic"
	default:
		return fmt.Sprintf("Protocol(%d)", int(p))
	}
}

// ParseProtocol parses a protocol name as printed by String.
func ParseProtocol(s string) (Protocol, error) {
	for _, p := range []Protocol{ProtocolSort, ProtocolORAM, ProtocolDynamicORAM, ProtocolPlaintext, ProtocolEnclave, ProtocolDeterministic} {
		if p.String() == s {
			return p, nil
		}
	}
	return 0, fmt.Errorf("securefd: unknown protocol %q (want sort|or-oram|ex-oram|plaintext|enclave|deterministic)", s)
}

// SortNetwork selects the comparison network used by ProtocolSort.
type SortNetwork = obsort.Network

// Available sorting networks.
const (
	// NetworkBitonic is the paper's choice (§III-C): fully regular,
	// balanced stages.
	NetworkBitonic SortNetwork = obsort.Bitonic
	// NetworkOddEven is Batcher's odd-even merge network: ~20% fewer
	// comparators, less regular stages.
	NetworkOddEven SortNetwork = obsort.OddEvenMerge
)

// ORAMKind selects the oblivious key-value construction.
type ORAMKind int

// Available ORAM constructions.
const (
	// ORAMPath is the paper's non-recursive PathORAM (Z=4).
	ORAMPath ORAMKind = iota
	// ORAMLinear is the trivial full-scan ORAM.
	ORAMLinear
)

// Options configures Outsource.
type Options struct {
	// Protocol selects the secure method; default ProtocolSort.
	Protocol Protocol
	// Workers is the parallelism degree: the sorting-network worker count
	// (ProtocolSort and ProtocolEnclave) and the number of partitions of
	// one lattice level materialized concurrently (all secure protocols).
	// Default 1, the fully serial schedule. Values above 1 change only the
	// interleaving of accesses across server-side structures, never any
	// single structure's access sequence (see DESIGN.md §11). With a
	// transport-backed service, size the connection pool to at least this
	// value so concurrent materializations actually overlap round trips.
	Workers int
	// Network selects ProtocolSort's comparison network; the zero value
	// is the paper's bitonic network.
	Network SortNetwork
	// ORAM selects the oblivious key-value construction backing
	// ProtocolORAM and ProtocolDynamicORAM; the zero value is the
	// paper's PathORAM. ORAMLinear is the trivial scan ORAM: O(1) client
	// memory but O(n) per access — only sensible for very small
	// databases (see the ablation-oram experiment).
	ORAM ORAMKind
	// InsertHeadroom reserves capacity for that many future insertions
	// (ProtocolORAM and ProtocolDynamicORAM).
	InsertHeadroom int
	// MaxLHS bounds the searched determinant size; 0 searches the full
	// lattice.
	MaxLHS int
	// KeepPartitions retains all materialized partitions after Discover,
	// required before calling Insert/Delete. ProtocolDynamicORAM sets it
	// implicitly.
	KeepPartitions bool
	// Telemetry, if non-nil, instruments the protocol engine and the
	// lattice traversal: ORAM access counters, sort-pass spans, per-level
	// lattice spans. It is honored by the secure protocols (sort, or-oram,
	// ex-oram); the benchmarking baselines ignore it.
	Telemetry *Registry
	// Trace, if non-nil, records causal distributed-tracing spans for the
	// lattice traversal (see core.Options.Trace). Share the tracer with
	// the transport ClientConfig so RPC spans — and, through the wire
	// context, server-side spans — nest under the lattice-level spans.
	Trace *Tracer
}

// Database is the client's handle to one outsourced database: it owns the
// encryption key, the uploaded ciphertexts' metadata, and the protocol
// engine.
type Database struct {
	svc      Service
	schema   *Schema
	opts     Options
	engine   core.Engine
	edb      *core.EncryptedDB  // nil for engines without an uploaded ciphertext DB
	resume   *core.LatticeState // set by Resume; consumed by the next Discover*
	m        int
	revealed atomic.Int64
}

// ErrStatic is returned by Insert/Delete on a protocol without dynamic
// support.
var ErrStatic = errors.New("securefd: protocol does not support this mutation")

var dbNames atomic.Int64

// Outsource encrypts rel cell by cell, uploads it to the service, and
// returns a handle ready for discovery. A fresh 128-bit key is generated
// per database and never leaves the client.
func Outsource(svc Service, rel *Relation, opts Options) (*Database, error) {
	if rel.NumRows() == 0 {
		return nil, fmt.Errorf("securefd: empty relation")
	}
	if opts.Workers < 1 {
		opts.Workers = 1
	}
	db := &Database{svc: svc, schema: rel.Schema(), opts: opts, m: rel.NumAttrs()}

	name := fmt.Sprintf("fd%d", dbNames.Add(1))
	capacity := rel.NumRows() + opts.InsertHeadroom

	switch opts.Protocol {
	case ProtocolPlaintext:
		db.engine = core.NewPlainEngine(rel)
	case ProtocolEnclave:
		db.engine = enclave.NewSortEngine(rel, opts.Workers)
	case ProtocolSort, ProtocolORAM, ProtocolDynamicORAM, ProtocolDeterministic:
		key, err := crypto.NewKey()
		if err != nil {
			return nil, fmt.Errorf("securefd: %w", err)
		}
		cipher, err := crypto.NewCipher(key)
		if err != nil {
			return nil, fmt.Errorf("securefd: %w", err)
		}
		// Attach before upload so integrity_checks_total covers the whole
		// lifetime of the database, including setup reads.
		cipher.SetTelemetry(opts.Telemetry)
		edb, err := core.UploadWithCapacity(svc, cipher, name, rel, capacity)
		if err != nil {
			return nil, fmt.Errorf("securefd: %w", err)
		}
		db.edb = edb
		var factory oram.Factory
		switch opts.ORAM {
		case ORAMPath:
			factory = oram.PathFactory
		case ORAMLinear:
			factory = oram.LinearFactory
		default:
			return nil, fmt.Errorf("securefd: unknown ORAM kind %d", opts.ORAM)
		}
		switch opts.Protocol {
		case ProtocolSort:
			eng := core.NewSortEngine(edb, opts.Workers)
			eng.Network = opts.Network
			eng.Telemetry = opts.Telemetry
			db.engine = eng
		case ProtocolORAM:
			eng := core.NewOrEngine(edb)
			eng.Factory = factory
			eng.Telemetry = opts.Telemetry
			db.engine = eng
		case ProtocolDynamicORAM:
			eng, err := core.NewExEngine(edb)
			if err != nil {
				return nil, fmt.Errorf("securefd: %w", err)
			}
			eng.Factory = factory
			eng.Telemetry = opts.Telemetry
			db.engine = eng
		case ProtocolDeterministic:
			db.engine = core.NewDetEngine(edb)
		}
	default:
		return nil, fmt.Errorf("securefd: unknown protocol %v", opts.Protocol)
	}
	return db, nil
}

// Report is the outcome of a Discover run.
type Report struct {
	// Minimal lists the minimal FDs (singleton right-hand sides); every
	// FD of the database is implied by them.
	Minimal []FD
	// Aggregated merges minimal FDs per determinant: the paper's (A, B)
	// pair form with composite right-hand sides.
	Aggregated []FD
	// SetsMaterialized and Checks describe the work performed.
	SetsMaterialized int
	Checks           int
}

// discoverOptions builds the core options for a discovery run, including a
// pending resume frontier if this handle was built by Resume.
func (db *Database) discoverOptions() *core.Options {
	keep := db.opts.KeepPartitions || db.opts.Protocol == ProtocolDynamicORAM
	return &core.Options{
		KeepPartitions: keep,
		MaxLHS:         db.opts.MaxLHS,
		Resume:         db.resume,
		Telemetry:      db.opts.Telemetry,
		Trace:          db.opts.Trace,
		Workers:        db.opts.Workers,
		Reveal: func(fd relation.FD, holds bool) {
			db.revealed.Add(1)
			v := int64(0)
			if holds {
				v = 1
			}
			if db.svc != nil {
				_ = db.svc.Reveal("fd:"+fd.String(), v)
			}
		},
	}
}

// report converts a core result and clears any consumed resume state.
func (db *Database) report(res *core.Result) *Report {
	db.resume = nil
	return &Report{
		Minimal:          res.Minimal,
		Aggregated:       core.AggregateFDs(res.Minimal),
		SetsMaterialized: res.SetsMaterialized,
		Checks:           res.Checks,
	}
}

// Discover runs secure FD discovery and returns the report. Each set-level
// decision is additionally revealed to the server's public log, which is
// exactly the protocol's allowed leakage. On a handle built by Resume, the
// run continues from the checkpointed lattice level instead of starting over.
func (db *Database) Discover() (*Report, error) {
	res, err := core.Discover(db.engine, db.m, db.discoverOptions())
	if err != nil {
		return nil, fmt.Errorf("securefd: %w", err)
	}
	return db.report(res), nil
}

// Validate checks one dependency X → Y (Theorem 1) and returns whether it
// holds.
func (db *Database) Validate(x, y AttrSet) (bool, error) {
	return core.Validate(db.engine, x, y)
}

// Insert adds a record and incrementally updates every materialized
// partition. Supported by ProtocolORAM, ProtocolDynamicORAM, and
// ProtocolPlaintext.
func (db *Database) Insert(row Row) (int, error) {
	switch eng := db.engine.(type) {
	case core.DynamicEngine:
		return eng.Insert(row)
	case *core.OrEngine:
		return eng.Insert(row)
	default:
		return 0, fmt.Errorf("%w: Insert with %v", ErrStatic, db.opts.Protocol)
	}
}

// Delete removes the record with the given id. Supported by
// ProtocolDynamicORAM and ProtocolPlaintext.
func (db *Database) Delete(id int) error {
	eng, ok := db.engine.(core.DynamicEngine)
	if !ok {
		return fmt.Errorf("%w: Delete with %v", ErrStatic, db.opts.Protocol)
	}
	return eng.Delete(id)
}

// Revalidation is the outcome of re-checking previously discovered FDs
// against the incrementally maintained partitions.
type Revalidation struct {
	// Valid lists the FDs that still hold.
	Valid []FD
	// Invalidated lists the FDs broken by the mutations since discovery.
	Invalidated []FD
}

// Revalidate re-checks the given dependencies using the cached partition
// cardinalities maintained across Insert and Delete. This is the dynamic
// protocol's payoff (Definition 5): after k mutations, re-validating an FD
// costs O(1) here — the maintenance was already paid at O(log n) per
// mutation — instead of the trivial Ω(n) re-scan.
//
// Every FD's partitions must still be materialized (run Discover first with
// a dynamic protocol, which retains them). FDs whose partitions are missing
// produce an error.
func (db *Database) Revalidate(fds []FD) (*Revalidation, error) {
	out := &Revalidation{}
	for _, fd := range fds {
		union := fd.LHS.Union(fd.RHS)
		cardLHS, ok := db.engine.Cardinality(fd.LHS)
		if !ok && !fd.LHS.IsEmpty() {
			return nil, fmt.Errorf("securefd: partition %v not materialized; run Discover with a dynamic protocol first", fd.LHS)
		}
		if fd.LHS.IsEmpty() {
			cardLHS = 1
		}
		cardUnion, haveUnion := db.engine.Cardinality(union)
		var holds bool
		switch {
		case haveUnion:
			holds = cardLHS == cardUnion
		case cardLHS == db.NumRows():
			// The LHS is (still) a superkey, which determines every
			// attribute. FDs harvested by key pruning land here: their
			// union partition was never materialized.
			holds = true
		default:
			// The union partition is gone and the superkey shortcut
			// fails; fall back to a full oblivious validation.
			var err error
			holds, err = core.Validate(db.engine, fd.LHS, fd.RHS)
			if err != nil {
				return nil, fmt.Errorf("securefd: revalidating %v: %w", fd, err)
			}
		}
		if holds {
			out.Valid = append(out.Valid, fd)
		} else {
			out.Invalidated = append(out.Invalidated, fd)
		}
	}
	return out, nil
}

// Update replaces the record with the given id by a new row, returning the
// new record's id. As in the paper (§V, footnote 1), an update is the
// composition of a deletion and an insertion; it needs a dynamic protocol.
func (db *Database) Update(id int, row Row) (int, error) {
	if err := db.Delete(id); err != nil {
		return 0, err
	}
	newID, err := db.Insert(row)
	if err != nil {
		return 0, fmt.Errorf("securefd: update deleted record %d but could not reinsert: %w", id, err)
	}
	return newID, nil
}

// SetTelemetry attaches a metrics registry to the handle's engine,
// including partitions that are already materialized. Use it to instrument
// a handle built by Resume (checkpoints carry no telemetry wiring) or to
// attach a registry after Outsource. Engines without instrumentation (the
// benchmarking baselines) accept the call as a no-op.
func (db *Database) SetTelemetry(reg *Registry) {
	db.opts.Telemetry = reg
	if eng, ok := db.engine.(interface{ SetTelemetry(*telemetry.Registry) }); ok {
		eng.SetTelemetry(reg)
	}
}

// SetTrace attaches a span recorder to the handle, so lattice-traversal
// spans are recorded on subsequent Discover calls. Use it to instrument a
// handle built by Resume (checkpoints carry no tracer wiring) or to attach
// a tracer after Outsource.
func (db *Database) SetTrace(tr *Tracer) { db.opts.Trace = tr }

// NumRows returns the live record count.
func (db *Database) NumRows() int { return db.engine.NumRows() }

// Schema returns the database schema.
func (db *Database) Schema() *Schema { return db.schema }

// Cardinality returns the cached |π_X| for a materialized attribute set.
func (db *Database) Cardinality(x AttrSet) (int, bool) { return db.engine.Cardinality(x) }

// ClientMemoryBytes estimates the client-held protocol state (position
// maps, stashes); the sorting protocol's is constant.
func (db *Database) ClientMemoryBytes() int { return db.engine.ClientMemoryBytes() }

// Close releases all server-side protocol state for this database.
func (db *Database) Close() error { return db.engine.Close() }
