package securefd

import (
	"testing"
)

func TestUpdateReplacesRecord(t *testing.T) {
	rel := employeeRelation(t)
	db, err := Outsource(NewServer(), rel, Options{
		Protocol:       ProtocolDynamicORAM,
		InsertHeadroom: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	report, err := db.Discover()
	if err != nil {
		t.Fatal(err)
	}

	// Update record 0 (Engineer, R&D, B1) to a violating row, then back.
	newID, err := db.Update(0, Row{"Engineer", "Support", "B1"})
	if err != nil {
		t.Fatalf("Update: %v", err)
	}
	if db.NumRows() != rel.NumRows() {
		t.Errorf("NumRows after update = %d, want %d", db.NumRows(), rel.NumRows())
	}
	rv, err := db.Revalidate(report.Minimal)
	if err != nil {
		t.Fatal(err)
	}
	if len(rv.Invalidated) == 0 {
		t.Error("violating update did not invalidate any FD")
	}
	if _, err := db.Update(newID, Row{"Engineer", "R&D", "B1"}); err != nil {
		t.Fatal(err)
	}
	rv, err = db.Revalidate(report.Minimal)
	if err != nil {
		t.Fatal(err)
	}
	if len(rv.Invalidated) != 0 {
		t.Errorf("FDs still broken after restoring update: %v", rv.Invalidated)
	}
}

func TestUpdateErrors(t *testing.T) {
	rel := employeeRelation(t)
	db, err := Outsource(NewServer(), rel, Options{
		Protocol:       ProtocolDynamicORAM,
		InsertHeadroom: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if _, err := db.Discover(); err != nil {
		t.Fatal(err)
	}
	// Unknown id: nothing deleted, nothing inserted.
	before := db.NumRows()
	if _, err := db.Update(99, Row{"a", "b", "c"}); err == nil {
		t.Error("Update of unknown id succeeded")
	}
	if db.NumRows() != before {
		t.Error("failed Update changed row count")
	}
	// Static protocol.
	db2, err := Outsource(NewServer(), rel, Options{Protocol: ProtocolSort})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if _, err := db2.Update(0, Row{"a", "b", "c"}); err == nil {
		t.Error("Update on static protocol succeeded")
	}
}

func TestLinearORAMOption(t *testing.T) {
	rel := employeeRelation(t)
	for _, p := range []Protocol{ProtocolORAM, ProtocolDynamicORAM} {
		db, err := Outsource(NewServer(), rel, Options{
			Protocol: p, ORAM: ORAMLinear, InsertHeadroom: 2,
		})
		if err != nil {
			t.Fatalf("%v: %v", p, err)
		}
		report, err := db.Discover()
		if err != nil {
			t.Fatalf("%v: Discover: %v", p, err)
		}
		if len(report.Minimal) == 0 {
			t.Errorf("%v: no FDs over linear ORAM", p)
		}
		db.Close()
	}
	if _, err := Outsource(NewServer(), rel, Options{ORAM: ORAMKind(9), Protocol: ProtocolORAM}); err == nil {
		t.Error("unknown ORAM kind accepted")
	}
}

func TestDatabaseAccessors(t *testing.T) {
	rel := employeeRelation(t)
	db, err := Outsource(NewServer(), rel, Options{Protocol: ProtocolPlaintext})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if db.Schema() != rel.Schema() {
		t.Error("Schema mismatch")
	}
	if db.NumRows() != rel.NumRows() {
		t.Error("NumRows mismatch")
	}
	if _, ok := db.Cardinality(NewAttrSet(0)); ok {
		t.Error("Cardinality before discovery")
	}
	if _, err := db.Discover(); err != nil {
		t.Fatal(err)
	}
	if db.ClientMemoryBytes() < 0 {
		t.Error("negative client memory")
	}
}
