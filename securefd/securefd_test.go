package securefd

import (
	"errors"
	"net"
	"testing"

	"github.com/oblivfd/oblivfd/internal/baseline"
	"github.com/oblivfd/oblivfd/internal/relation"
)

func employeeRelation(t *testing.T) *Relation {
	t.Helper()
	schema, err := NewSchema("Position", "Department", "Office")
	if err != nil {
		t.Fatal(err)
	}
	rel, err := FromRows(schema, []Row{
		{"Engineer", "R&D", "B1"},
		{"Engineer", "R&D", "B2"},
		{"Manager", "R&D", "B1"},
		{"Sales", "Market", "B3"},
		{"Sales", "Market", "B3"},
	})
	if err != nil {
		t.Fatal(err)
	}
	return rel
}

func allProtocols() []Protocol {
	return []Protocol{
		ProtocolSort, ProtocolORAM, ProtocolDynamicORAM,
		ProtocolPlaintext, ProtocolEnclave, ProtocolDeterministic,
	}
}

func TestDiscoverAllProtocolsAgree(t *testing.T) {
	rel := employeeRelation(t)
	want := baseline.MinimalFDs(rel)
	for _, p := range allProtocols() {
		t.Run(p.String(), func(t *testing.T) {
			db, err := Outsource(NewServer(), rel, Options{Protocol: p, Workers: 2})
			if err != nil {
				t.Fatalf("Outsource: %v", err)
			}
			defer db.Close()
			report, err := db.Discover()
			if err != nil {
				t.Fatalf("Discover: %v", err)
			}
			if !relation.FDSetEqual(report.Minimal, want) {
				t.Errorf("Minimal = %v, want %v", report.Minimal, want)
			}
			if len(report.Aggregated) == 0 || len(report.Aggregated) > len(report.Minimal) {
				t.Errorf("Aggregated size %d vs minimal %d", len(report.Aggregated), len(report.Minimal))
			}
			if report.Checks == 0 || report.SetsMaterialized == 0 {
				t.Errorf("work counters empty: %+v", report)
			}
		})
	}
}

func TestDiscoverFindsPositionDepartment(t *testing.T) {
	rel := employeeRelation(t)
	db, err := Outsource(NewServer(), rel, Options{Protocol: ProtocolSort})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	report, err := db.Discover()
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, fd := range report.Minimal {
		if fd.LHS == NewAttrSet(0) && fd.RHS == NewAttrSet(1) {
			found = true
		}
	}
	if !found {
		t.Errorf("Position -> Department missing from %v", report.Minimal)
	}
}

func TestValidate(t *testing.T) {
	rel := employeeRelation(t)
	for _, p := range []Protocol{ProtocolSort, ProtocolDynamicORAM} {
		db, err := Outsource(NewServer(), rel, Options{Protocol: p})
		if err != nil {
			t.Fatal(err)
		}
		holds, err := db.Validate(NewAttrSet(0), NewAttrSet(1))
		if err != nil || !holds {
			t.Errorf("%v: Position -> Department = %v, %v", p, holds, err)
		}
		holds, err = db.Validate(NewAttrSet(1), NewAttrSet(0))
		if err != nil || holds {
			t.Errorf("%v: Department -> Position = %v, %v", p, holds, err)
		}
		db.Close()
	}
}

func TestDynamicLifecycle(t *testing.T) {
	rel := employeeRelation(t)
	db, err := Outsource(NewServer(), rel, Options{
		Protocol:       ProtocolDynamicORAM,
		InsertHeadroom: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if _, err := db.Discover(); err != nil {
		t.Fatal(err)
	}
	// Violate Position -> Department, re-validate via cardinalities.
	id, err := db.Insert(Row{"Engineer", "Support", "B9"})
	if err != nil {
		t.Fatalf("Insert: %v", err)
	}
	pos, _ := db.Cardinality(NewAttrSet(0))
	posDep, _ := db.Cardinality(NewAttrSet(0, 1))
	if pos == posDep {
		t.Error("FD still holds after violating insert")
	}
	if err := db.Delete(id); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	pos, _ = db.Cardinality(NewAttrSet(0))
	posDep, _ = db.Cardinality(NewAttrSet(0, 1))
	if pos != posDep {
		t.Error("FD did not recover after delete")
	}
	if db.NumRows() != rel.NumRows() {
		t.Errorf("NumRows = %d, want %d", db.NumRows(), rel.NumRows())
	}
}

func TestStaticProtocolsRejectMutation(t *testing.T) {
	rel := employeeRelation(t)
	db, err := Outsource(NewServer(), rel, Options{Protocol: ProtocolSort})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if _, err := db.Insert(Row{"a", "b", "c"}); !errors.Is(err, ErrStatic) {
		t.Errorf("Insert on sort err = %v", err)
	}
	if err := db.Delete(0); !errors.Is(err, ErrStatic) {
		t.Errorf("Delete on sort err = %v", err)
	}
	// Or-ORAM: insert OK (with headroom), delete rejected.
	db2, err := Outsource(NewServer(), rel, Options{Protocol: ProtocolORAM, InsertHeadroom: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if _, err := db2.Insert(Row{"a", "b", "c"}); err != nil {
		t.Errorf("Insert on or-oram: %v", err)
	}
	if err := db2.Delete(0); !errors.Is(err, ErrStatic) {
		t.Errorf("Delete on or-oram err = %v", err)
	}
}

func TestOutsourceValidation(t *testing.T) {
	schema, _ := NewSchema("a")
	empty := NewRelation(schema)
	if _, err := Outsource(NewServer(), empty, Options{}); err == nil {
		t.Error("empty relation accepted")
	}
	rel := employeeRelation(t)
	if _, err := Outsource(NewServer(), rel, Options{Protocol: Protocol(99)}); err == nil {
		t.Error("unknown protocol accepted")
	}
}

func TestProtocolParseAndString(t *testing.T) {
	for _, p := range allProtocols() {
		got, err := ParseProtocol(p.String())
		if err != nil || got != p {
			t.Errorf("round trip %v: %v, %v", p, got, err)
		}
	}
	if _, err := ParseProtocol("nope"); err == nil {
		t.Error("unknown name parsed")
	}
	if Protocol(99).String() == "" {
		t.Error("unknown protocol renders empty")
	}
}

func TestDiscoverOverTCP(t *testing.T) {
	backend := NewServer()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go func() { _ = ServeTCP(l, backend) }()

	svc, err := DialTCP(l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	rel := employeeRelation(t)
	db, err := Outsource(svc, rel, Options{Protocol: ProtocolSort})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	report, err := db.Discover()
	if err != nil {
		t.Fatalf("Discover over TCP: %v", err)
	}
	want := baseline.MinimalFDs(rel)
	if !relation.FDSetEqual(report.Minimal, want) {
		t.Errorf("Minimal over TCP = %v, want %v", report.Minimal, want)
	}
	// The server's public log holds only FD decisions.
	for _, rv := range backend.Reveals() {
		if rv.Value != 0 && rv.Value != 1 {
			t.Errorf("non-boolean reveal %v", rv)
		}
	}
	if len(backend.Reveals()) == 0 {
		t.Error("no reveals logged")
	}
}

func TestGenerateDatasetAndCSVRoundTrip(t *testing.T) {
	rel, err := GenerateDataset("adult", 25, 1)
	if err != nil {
		t.Fatal(err)
	}
	if rel.NumRows() != 25 || rel.NumAttrs() != 14 {
		t.Errorf("adult shape = %dx%d", rel.NumAttrs(), rel.NumRows())
	}
	path := t.TempDir() + "/a.csv"
	if err := WriteCSVFile(path, rel); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSVFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumRows() != 25 {
		t.Errorf("rows after round trip = %d", back.NumRows())
	}
	r := GenerateRND(4, 10, 2)
	if r.NumAttrs() != 4 || r.NumRows() != 10 {
		t.Errorf("rnd shape = %dx%d", r.NumAttrs(), r.NumRows())
	}
}
