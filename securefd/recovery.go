package securefd

import (
	"fmt"

	"github.com/oblivfd/oblivfd/internal/core"
	"github.com/oblivfd/oblivfd/internal/store"
)

// Crash recovery. Discovery over a large database can run for hours and
// makes millions of storage calls; a crash on either side must not cost the
// whole run. Recovery is two-sided:
//
//   - Server side: a DurableServer (OpenDir) persists every mutation to an
//     append-only WAL and takes an atomic snapshot at each client-marked
//     epoch. After a crash it recovers to the last acknowledged operation.
//   - Client side: DiscoverResumable periodically writes a client-local
//     checkpoint file — encryption key, ORAM stashes and position maps, and
//     the lattice frontier — and marks the matching epoch on the server.
//     Resume continues the run from the last completed lattice level.
//
// The checkpoint file contains the database secrets and must never leave
// the client. The server-side counterpart is only the epoch number, so the
// leakage profile L(DB) = {Size(DB), FD(DB)} is unchanged: the adversary
// additionally learns when the client checkpointed, which is timing it
// already observes, and the persisted bytes are the same ciphertexts and
// public structure a memory-observing adversary already sees.
type (
	// DurableServer is a Server backed by a data directory (WAL +
	// snapshots); create with OpenDir, shut down with Snapshot + Close.
	DurableServer = store.DurableServer
	// DurableOptions tunes durability (sync cadence, snapshot retention).
	DurableOptions = store.DurableOptions
	// RecoveryInfo reports what OpenDir found and repaired.
	RecoveryInfo = store.RecoveryInfo
	// Checkpoint is a complete client-side recovery point.
	Checkpoint = core.Checkpoint
)

// Typed recovery failures; all are fatal (never retried by WithRetry) and
// survive the TCP transport.
var (
	// ErrCorruptSnapshot marks an unreadable snapshot stream or file.
	ErrCorruptSnapshot = store.ErrCorruptSnapshot
	// ErrCorruptWAL marks a write-ahead log that fails mid-stream (a torn
	// tail is repaired silently, not an error).
	ErrCorruptWAL = store.ErrCorruptWAL
	// ErrServerKilled marks operations after an injected kill point.
	ErrServerKilled = store.ErrServerKilled
	// ErrNoSuchEpoch is returned by OpenDirAtEpoch when no retained
	// snapshot matches the requested epoch.
	ErrNoSuchEpoch = store.ErrNoSuchEpoch
	// ErrCorruptCheckpoint marks an unreadable client checkpoint file.
	ErrCorruptCheckpoint = core.ErrCorruptCheckpoint
	// ErrEpochMismatch means the server's storage state does not match the
	// checkpoint's epoch; recover the server first (OpenDirAtEpoch). A stale
	// or rolled-back snapshot is an integrity event, so errors carrying this
	// sentinel also match ErrIntegrity.
	ErrEpochMismatch = core.ErrEpochMismatch
)

// OpenDir opens (or initializes) a durable server over a data directory,
// recovering state from the newest valid snapshot plus the WAL tail.
func OpenDir(dir string, opts DurableOptions) (*DurableServer, error) {
	return store.OpenDir(dir, opts)
}

// OpenDirAtEpoch opens a durable server rolled back to the snapshot taken at
// exactly the given epoch, discarding anything newer. Use it to re-align the
// server with a client checkpoint after a client crash.
func OpenDirAtEpoch(dir string, epoch int64, opts DurableOptions) (*DurableServer, error) {
	return store.OpenDirAtEpoch(dir, epoch, opts)
}

// ReadCheckpointFile loads and validates a client checkpoint file (for
// inspecting its epoch before deciding how to recover the server).
func ReadCheckpointFile(path string) (*Checkpoint, error) {
	return core.ReadCheckpointFile(path)
}

// DiscoverResumable runs Discover while periodically persisting progress: at
// every completed lattice level it marks an epoch on the server
// (Service.Checkpoint — a durable server snapshots there) and atomically
// rewrites the checkpoint file at path. After a crash, Resume(svc, path)
// continues from the last completed level.
//
// Only the ORAM protocols support checkpointing — their per-set client state
// is serializable. ProtocolSort holds transient sorting state with no stable
// intermediate to persist; restart those runs instead.
//
// On a handle built by Resume, the run continues from the checkpointed
// frontier, and keeps checkpointing to path.
func (db *Database) DiscoverResumable(path string) (*Report, error) {
	eng, ok := db.engine.(core.CheckpointableEngine)
	if !ok || db.edb == nil {
		return nil, fmt.Errorf("securefd: protocol %v does not support checkpointing (want %v or %v)",
			db.opts.Protocol, ProtocolORAM, ProtocolDynamicORAM)
	}
	opts := db.discoverOptions()
	opts.Checkpoint = func(ls *core.LatticeState) error {
		// Epoch = completed-level count. Server first: once the epoch is
		// marked (and, on a durable server, snapshotted), the client file
		// is written. If we crash between the two, the previous epoch's
		// snapshot is still retained (KeepSnapshots ≥ 2), so the old
		// checkpoint file can still roll the server back via
		// OpenDirAtEpoch.
		epoch := int64(ls.NextLevel)
		if err := db.svc.Checkpoint(epoch); err != nil {
			return fmt.Errorf("marking server epoch %d: %w", epoch, err)
		}
		return core.WriteCheckpointFile(path, &core.Checkpoint{
			Epoch:   epoch,
			EDB:     db.edb.State(),
			Engine:  eng.CheckpointState(),
			Lattice: ls,
		})
	}
	res, err := core.Discover(db.engine, db.m, opts)
	if err != nil {
		return nil, fmt.Errorf("securefd: %w", err)
	}
	return db.report(res), nil
}

// Resume rebuilds a Database from a checkpoint file against a service whose
// storage state matches the checkpoint's epoch exactly. The recovered
// snapshot's epoch tag is verified before the engine is re-instrumented; on
// mismatch Resume returns an error matching both ErrEpochMismatch and
// ErrIntegrity instead of proceeding — recover the server to that epoch
// first, e.g. with OpenDirAtEpoch or ResumeFromDir. The next Discover or
// DiscoverResumable call on the returned handle continues from the
// checkpointed lattice level.
func Resume(svc Service, path string) (*Database, error) {
	cp, err := core.ReadCheckpointFile(path)
	if err != nil {
		return nil, fmt.Errorf("securefd: %w", err)
	}
	return resumeFrom(svc, cp)
}

// ResumeFromDir recovers both sides at once: it reads the checkpoint, opens
// the server's data directory rolled back to the checkpoint's epoch, and
// resumes the client against it. The caller owns the returned server
// (Snapshot + Close on shutdown).
func ResumeFromDir(dir, ckptPath string, opts DurableOptions) (*Database, *DurableServer, error) {
	cp, err := core.ReadCheckpointFile(ckptPath)
	if err != nil {
		return nil, nil, fmt.Errorf("securefd: %w", err)
	}
	srv, err := store.OpenDirAtEpoch(dir, cp.Epoch, opts)
	if err != nil {
		return nil, nil, fmt.Errorf("securefd: %w", err)
	}
	db, err := resumeFrom(srv, cp)
	if err != nil {
		srv.Close()
		return nil, nil, err
	}
	return db, srv, nil
}

func resumeFrom(svc Service, cp *core.Checkpoint) (*Database, error) {
	if err := core.VerifyEpoch(svc, cp.Epoch); err != nil {
		return nil, fmt.Errorf("securefd: %w", err)
	}
	edb, err := core.AttachEDB(svc, cp.EDB)
	if err != nil {
		return nil, fmt.Errorf("securefd: %w", err)
	}
	eng, err := core.ResumeEngine(edb, cp.Engine)
	if err != nil {
		return nil, fmt.Errorf("securefd: %w", err)
	}
	var proto Protocol
	switch eng.(type) {
	case *core.OrEngine:
		proto = ProtocolORAM
	case *core.ExEngine:
		proto = ProtocolDynamicORAM
	default:
		return nil, fmt.Errorf("%w: unexpected engine %T", ErrCorruptCheckpoint, eng)
	}
	kind := ORAMPath
	if len(cp.Engine.Sets) > 0 && cp.Engine.Sets[0].Primary != nil && cp.Engine.Sets[0].Primary.Linear != nil {
		kind = ORAMLinear
	}
	return &Database{
		svc:    svc,
		schema: edb.Schema(),
		opts: Options{
			Protocol:       proto,
			ORAM:           kind,
			MaxLHS:         cp.Lattice.MaxLHS,
			KeepPartitions: cp.Lattice.KeepPartitions,
		},
		engine: eng,
		edb:    edb,
		resume: cp.Lattice,
		m:      cp.Lattice.M,
	}, nil
}
