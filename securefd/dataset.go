package securefd

import (
	"io"

	"github.com/oblivfd/oblivfd/internal/dataset"
)

// GenerateDataset builds one of the evaluation workloads by name:
// "rnd" (the paper's synthetic dataset: uniform values in [1, 2²⁰]),
// "adult", "letter", or "flight" (shape-compatible stand-ins for the
// paper's real-world datasets, Table I). rows ≤ 0 selects the published
// size; the seed makes generation reproducible.
func GenerateDataset(name string, rows int, seed int64) (*Relation, error) {
	return dataset.Generate(name, rows, seed)
}

// GenerateRND builds the synthetic RND dataset with explicit dimensions.
func GenerateRND(columns, rows int, seed int64) *Relation {
	return dataset.RND(columns, rows, seed)
}

// ReadCSV loads a relation from CSV with a header row.
func ReadCSV(r io.Reader) (*Relation, error) { return dataset.ReadCSV(r) }

// ReadCSVFile loads a relation from a CSV file.
func ReadCSVFile(path string) (*Relation, error) { return dataset.ReadCSVFile(path) }

// WriteCSV writes a relation as CSV with a header row.
func WriteCSV(w io.Writer, rel *Relation) error { return dataset.WriteCSV(w, rel) }

// WriteCSVFile writes a relation to a CSV file.
func WriteCSVFile(path string, rel *Relation) error { return dataset.WriteCSVFile(path, rel) }
