package securefd

import (
	"testing"

	"github.com/oblivfd/oblivfd/internal/relation"
)

func TestRevalidateAfterMutations(t *testing.T) {
	rel := employeeRelation(t)
	db, err := Outsource(NewServer(), rel, Options{
		Protocol:       ProtocolDynamicORAM,
		InsertHeadroom: 6,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	report, err := db.Discover()
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Minimal) == 0 {
		t.Fatal("no FDs discovered")
	}

	// All FDs valid right after discovery.
	rv, err := db.Revalidate(report.Minimal)
	if err != nil {
		t.Fatalf("Revalidate: %v", err)
	}
	if len(rv.Invalidated) != 0 {
		t.Errorf("freshly discovered FDs invalidated: %v", rv.Invalidated)
	}
	if len(rv.Valid) != len(report.Minimal) {
		t.Errorf("valid = %d, want %d", len(rv.Valid), len(report.Minimal))
	}

	// Break Position -> Department.
	id, err := db.Insert(Row{"Engineer", "Support", "B1"})
	if err != nil {
		t.Fatal(err)
	}
	rv, err = db.Revalidate(report.Minimal)
	if err != nil {
		t.Fatal(err)
	}
	broken := false
	for _, fd := range rv.Invalidated {
		if fd.LHS == NewAttrSet(0) && fd.RHS == NewAttrSet(1) {
			broken = true
		}
	}
	if !broken {
		t.Errorf("Position -> Department not invalidated; invalidated = %v", rv.Invalidated)
	}

	// Restore.
	if err := db.Delete(id); err != nil {
		t.Fatal(err)
	}
	rv, err = db.Revalidate(report.Minimal)
	if err != nil {
		t.Fatal(err)
	}
	if len(rv.Invalidated) != 0 {
		t.Errorf("FDs still invalidated after rollback: %v", rv.Invalidated)
	}
}

// TestRevalidateMatchesOracle mutates randomly and cross-checks every
// revalidation verdict against the direct plaintext definition.
func TestRevalidateMatchesOracle(t *testing.T) {
	schema, _ := NewSchema("a", "b", "c")
	rows := []Row{
		{"1", "x", "p"}, {"1", "x", "q"}, {"2", "y", "p"}, {"3", "y", "q"},
	}
	rel, _ := FromRows(schema, rows)
	db, err := Outsource(NewServer(), rel, Options{
		Protocol:       ProtocolDynamicORAM,
		InsertHeadroom: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	report, err := db.Discover()
	if err != nil {
		t.Fatal(err)
	}

	// Maintain a mirror plaintext relation.
	mirror := rel.Clone()
	type mut struct {
		insert Row
	}
	muts := []mut{
		{insert: Row{"1", "y", "p"}},
		{insert: Row{"4", "x", "p"}},
		{insert: Row{"1", "x", "r"}},
	}
	for _, m := range muts {
		if _, err := db.Insert(m.insert); err != nil {
			t.Fatal(err)
		}
		if err := mirror.Append(m.insert); err != nil {
			t.Fatal(err)
		}
		rv, err := db.Revalidate(report.Minimal)
		if err != nil {
			t.Fatal(err)
		}
		verdicts := make(map[relation.FD]bool)
		for _, fd := range rv.Valid {
			verdicts[fd] = true
		}
		for _, fd := range rv.Invalidated {
			verdicts[fd] = false
		}
		for _, fd := range report.Minimal {
			want := fd.Holds(mirror)
			if got, ok := verdicts[fd]; !ok || got != want {
				t.Errorf("after insert %v: FD %v verdict = %v, want %v", m.insert, fd, got, want)
			}
		}
	}
}

func TestRevalidateRequiresDynamicState(t *testing.T) {
	rel := employeeRelation(t)
	db, err := Outsource(NewServer(), rel, Options{Protocol: ProtocolSort})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	// Static protocol without KeepPartitions: discovery releases lower
	// levels, so revalidation of an arbitrary FD must fail loudly.
	if _, err := db.Discover(); err != nil {
		t.Fatal(err)
	}
	_, err = db.Revalidate([]FD{{LHS: NewAttrSet(0), RHS: NewAttrSet(1)}})
	if err == nil {
		t.Error("Revalidate without retained partitions succeeded")
	}
}
