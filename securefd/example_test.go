package securefd_test

import (
	"fmt"
	"log"

	"github.com/oblivfd/oblivfd/securefd"
)

// The paper's Fig. 1 relation: discover that Name determines City.
func Example() {
	schema, err := securefd.NewSchema("Name", "City", "Birth")
	if err != nil {
		log.Fatal(err)
	}
	rel, err := securefd.FromRows(schema, []securefd.Row{
		{"Alice", "Boston", "Jan"},
		{"Bob", "Boston", "May"},
		{"Bob", "Boston", "Jan"},
		{"Carol", "New York", "Sep"},
	})
	if err != nil {
		log.Fatal(err)
	}

	db, err := securefd.Outsource(securefd.NewServer(), rel, securefd.Options{
		Protocol: securefd.ProtocolSort,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	report, err := db.Discover()
	if err != nil {
		log.Fatal(err)
	}
	for _, fd := range report.Minimal {
		fmt.Println(fd.Format(schema))
	}
	// Output:
	// {Name} -> {City}
	// {Birth} -> {City}
}

// Validate a single dependency without full discovery.
func ExampleDatabase_Validate() {
	schema, _ := securefd.NewSchema("Zipcode", "City")
	rel, _ := securefd.FromRows(schema, []securefd.Row{
		{"02210", "Boston"},
		{"02210", "Boston"},
		{"10001", "New York"},
	})
	db, err := securefd.Outsource(securefd.NewServer(), rel, securefd.Options{
		Protocol: securefd.ProtocolDynamicORAM,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	holds, err := db.Validate(schema.MustSet("Zipcode"), schema.MustSet("City"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Zipcode -> City:", holds)
	// Output:
	// Zipcode -> City: true
}

// Maintain dependencies across insertions and deletions with the dynamic
// protocol.
func ExampleDatabase_Insert() {
	schema, _ := securefd.NewSchema("Position", "Department")
	rel, _ := securefd.FromRows(schema, []securefd.Row{
		{"Engineer", "R&D"},
		{"Sales", "Market"},
	})
	db, err := securefd.Outsource(securefd.NewServer(), rel, securefd.Options{
		Protocol:       securefd.ProtocolDynamicORAM,
		InsertHeadroom: 4,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	report, err := db.Discover()
	if err != nil {
		log.Fatal(err)
	}

	// Break Position -> Department, then check the damage.
	if _, err := db.Insert(securefd.Row{"Engineer", "Support"}); err != nil {
		log.Fatal(err)
	}
	rv, err := db.Revalidate(report.Minimal)
	if err != nil {
		log.Fatal(err)
	}
	for _, fd := range rv.Invalidated {
		fmt.Println("broken:", fd.Format(schema))
	}
	// Output:
	// broken: {Position} -> {Department}
}
